package fuzz

import (
	"fmt"
	"math/rand"
	"time"

	"redotheory/internal/core"
	"redotheory/internal/method"
	"redotheory/internal/model"
	"redotheory/internal/obs"
	"redotheory/internal/serve"
	"redotheory/internal/shard"
	"redotheory/internal/sim"
	"redotheory/internal/supervise"
	"redotheory/internal/workload"
)

// disagreement is one oracle leg's dissent.
type disagreement struct {
	check  string
	detail string
	// flight is the flight-recorder dump captured around the failing
	// cell — the events leading into the disagreement, plus any crash
	// snapshots the supervised leg preserved. Attached to the repro
	// artifact by Config.fail.
	flight *obs.FlightDump
}

// coverage carries the per-cell coverage observations.
type coverage struct {
	replayed   int
	examined   int
	components int
	partSig    string
}

// checkCell executes one cell and runs the full differential oracle
// over the crash survivors:
//
//  1. oracle state — the recovery base plus the stable log replayed in
//     log order. By Lemma 1 and Theorem 3 this is the determined state,
//     the unique correct recovery outcome for a clean crash.
//  2. invariant — the core checker's explainability verdict on the
//     stable state, checkpoint set, and redo test.
//  3. determined-state — the state graph's final state must equal the
//     sequential oracle replay (the Theorem 3 identity itself).
//  4. sequential — method.Recover must reach the oracle state.
//  5. parallel — method.RecoverParallel must reproduce the sequential
//     outcome bit for bit (SameOutcome).
//  6. degraded — method.RecoverDegraded on these undamaged substrates
//     must take its fast path (no detections, not degraded), reach the
//     oracle state, and pass its own audit. Its conservative path would
//     mutate the store in place; on a clean cell the fast path leaves
//     the survivors untouched.
//  7. supervised — supervise.Supervise under the cell's nested-crash
//     schedule must converge to the oracle state (Corollary 4: recovery
//     crashed at any point simply restarts and finishes). It runs last
//     of all because its installing attempts persist redone work into
//     the stable state.
//  8. serve — the instant-restart engine (internal/serve) must agree
//     with sequential recovery under lazy per-page redo: first with a
//     seeded random touch order (every served read must already equal
//     the oracle value, and the drained result must be SameOutcome with
//     leg 4), then with a seeded mixed client schedule of reads and
//     post-crash writes checked against the oracle state plus those
//     writes in commit order. Despite the numbering it executes before
//     the supervised leg — the serve engine works on fresh projections
//     and a private WAL, while supervised attempts persist redone work
//     into the stable state.
//
// A non-nil disagreement identifies the first leg that dissented. The
// error return is reserved for harness breakage.
//
// Every cell runs under a flight recorder: a bounded event ring
// attached as the recorder's sink for the cell's duration (created
// along with a throwaway recorder when the caller passed none). On a
// disagreement the ring is dumped into the result, so repro artifacts
// carry the telemetry leading into the failure — including the crash
// snapshots the supervised leg preserved. A recorder that is already
// sinking keeps its own stream and no flight is captured.
func checkCell(m sim.NamedFactory, cell Cell, rec *obs.Recorder, failCheck func(ops []*model.Op, crash int) string) (*disagreement, *coverage, error) {
	if rec == nil {
		rec = obs.New()
	}
	var flight *obs.FlightRecorder
	if !rec.Sinking() {
		flight = obs.NewFlightRecorder(512)
		rec.SetSink(flight)
		defer rec.SetSink(nil)
	}
	dis, cov, err := checkCellRun(m, cell, rec, flight, failCheck)
	if dis != nil && flight != nil {
		// Stamp the verdict into the ring before dumping, so even a
		// disagreement raised ahead of any instrumented activity leaves a
		// non-empty flight dump naming the failed check.
		rec.Emit(obs.Event{Type: obs.EvDetection, Detail: dis.check + ": " + dis.detail})
		dis.flight = flight.Dump()
	}
	return dis, cov, err
}

// checkCellRun is checkCell's body, with the flight ring threaded into
// the supervised leg so nested-crash snapshots are preserved.
func checkCellRun(m sim.NamedFactory, cell Cell, rec *obs.Recorder, flight *obs.FlightRecorder, failCheck func(ops []*model.Op, crash int) string) (*disagreement, *coverage, error) {
	db, err := execute(m.New, cell, rec)
	if err != nil {
		return nil, nil, err
	}

	stableLog := db.StableLog()
	base := db.RecoveryBase()

	// Leg 1: the oracle state.
	oracle := db.RecoveryBase()
	for _, op := range stableLog.Ops() {
		if _, err := oracle.Apply(op); err != nil {
			return nil, nil, fmt.Errorf("fuzz: oracle replay: %w", err)
		}
	}

	// Test-only injected oracle bug (see Config.failCheck).
	if failCheck != nil {
		if msg := failCheck(cell.History.Ops, cell.Crash); msg != "" {
			return &disagreement{check: "injected", detail: msg}, nil, nil
		}
	}

	// Legs 2 and 3: explainability and the determined state.
	checker, err := core.NewCheckerObserved(stableLog, base, rec)
	if err != nil {
		return nil, nil, fmt.Errorf("fuzz: building checker: %w", err)
	}
	if chk := checker.Check(db.StableState(), stableLog, db.Checkpointed(), db.RedoTest(), db.Analyze(), false); !chk.OK {
		return &disagreement{check: "invariant", detail: fmt.Sprintf("%v", chk.Violations)}, nil, nil
	}
	if !checker.FinalState().Equal(oracle) {
		return &disagreement{check: "determined-state",
			detail: "state graph final state diverges from sequential log replay"}, nil, nil
	}

	// Leg 4: sequential recovery.
	seq, err := method.RecoverObserved(db, rec)
	if err != nil {
		return &disagreement{check: "sequential-error", detail: err.Error()}, nil, nil
	}
	if !seq.State.Equal(oracle) {
		return &disagreement{check: "sequential-oracle",
			detail: fmt.Sprintf("recovered state diverges from oracle (replayed %d of %d stable ops)",
				len(seq.RedoSet), stableLog.Len())}, nil, nil
	}

	// Leg 5: partitioned parallel recovery.
	par, err := method.RecoverParallel(db, method.ParallelOptions{Workers: cell.Workers, Recorder: rec})
	if err != nil {
		return &disagreement{check: "parallel-error", detail: err.Error()}, nil, nil
	}
	if err := par.SameOutcome(seq); err != nil {
		return &disagreement{check: "parallel-divergence", detail: err.Error()}, nil, nil
	}

	cov := &coverage{
		replayed:   len(seq.RedoSet),
		examined:   seq.Examined,
		components: par.Plan.Components,
		partSig:    par.Plan.Signature(),
	}

	// Leg 6: degraded recovery on clean substrates.
	deg, err := method.RecoverDegraded(db, method.RunToCompletion())
	if err != nil {
		return &disagreement{check: "degraded-error", detail: err.Error()}, cov, nil
	}
	switch {
	case len(deg.Detections) > 0:
		return &disagreement{check: "degraded-spurious-detection",
			detail: fmt.Sprintf("clean substrates, detections %v", deg.Detections)}, cov, nil
	case deg.Degraded:
		return &disagreement{check: "degraded-path",
			detail: "clean substrates routed to the conservative path"}, cov, nil
	case deg.Unrecoverable:
		return &disagreement{check: "degraded-unrecoverable",
			detail: "clean substrates declared unrecoverable"}, cov, nil
	case deg.State == nil || !deg.State.Equal(oracle):
		return &disagreement{check: "degraded-state",
			detail: "degraded recovery diverges from oracle"}, cov, nil
	case deg.Audit == nil || !deg.Audit.OK:
		return &disagreement{check: "degraded-audit",
			detail: fmt.Sprintf("degraded audit failed: %v", auditViolations(deg))}, cov, nil
	}

	// Leg 8: instant-restart serving (before leg 7 — see the leg list).
	if dis := checkServe(db, cell, seq, oracle, rec); dis != nil {
		return dis, cov, nil
	}

	// Leg 9: sharded recovery. Independent of the cell's DB — it
	// re-executes the cell-sized workload as a 2-shard cross-shard run
	// (crash points staggered off the cell's crash) and requires
	// per-shard recovery under the certified cut to match the merged
	// single-log oracle. Skipped for methods the sharding coordinator
	// cannot host and for empty histories.
	if dis := checkShardedLeg(m, cell, rec); dis != nil {
		return dis, cov, nil
	}

	// Leg 7: supervised recovery under the cell's nested-crash schedule.
	sup, err := supervise.Supervise(db, supervise.Options{
		MaxAttempts:   len(cell.NestedCrash) + 8,
		ProgressEvery: 2,
		Seed:          cell.Schedule.Seed,
		Crashes:       supervise.CrashPlan{Points: cell.NestedCrash},
		Recorder:      rec,
		Flight:        flight,
		Sleep:         func(time.Duration) {},
	})
	switch {
	case err != nil:
		return &disagreement{check: "supervised-error", detail: err.Error()}, cov, nil
	case !sup.Converged:
		return &disagreement{check: "supervised-nonconvergence",
			detail: fmt.Sprintf("supervised recovery exhausted %d attempts under schedule %v (rung %s)",
				len(sup.Attempts), cell.NestedCrash, sup.Rung)}, cov, nil
	case sup.State == nil || !sup.State.Equal(oracle):
		return &disagreement{check: "supervised-oracle",
			detail: fmt.Sprintf("supervised recovery diverges from oracle under schedule %v (rung %s)",
				cell.NestedCrash, sup.Rung)}, cov, nil
	}

	return nil, cov, nil
}

// checkServe is oracle leg 8: lazy per-page recovery must be
// indistinguishable from sequential recovery at every observation
// point, for any touch order, with or without concurrent post-crash
// writes. The engine works on fresh state/log projections and a
// private WAL, so the crashed DB is untouched for the legs that follow.
func checkServe(db method.DB, cell Cell, seq *core.Result, oracle *model.State, rec *obs.Recorder) *disagreement {
	pages := workload.Pages(cell.History.Pages)
	seed := sim.MixSeed(cell.Schedule.Seed, 7)
	rng := rand.New(rand.NewSource(seed))

	// 8a: read-only, random touch order.
	eng, err := serve.New(db, serve.Options{Recorder: rec})
	if err != nil {
		return &disagreement{check: "serve-error", detail: err.Error()}
	}
	for _, pi := range rng.Perm(len(pages)) {
		p := pages[pi]
		v, err := eng.Read(p)
		if err != nil {
			return &disagreement{check: "serve-error",
				detail: fmt.Sprintf("reading %s (touch seed %d): %v", p, seed, err)}
		}
		if want := oracle.Get(p); v != want {
			return &disagreement{check: "serve-read",
				detail: fmt.Sprintf("page %s served %q before full recovery, oracle has %q (touch seed %d)",
					p, v, want, seed)}
		}
	}
	if err := eng.Drain(); err != nil {
		return &disagreement{check: "serve-error", detail: "drain: " + err.Error()}
	}
	res, err := eng.Result()
	if err != nil {
		return &disagreement{check: "serve-error", detail: err.Error()}
	}
	if err := res.SameOutcome(seq); err != nil {
		return &disagreement{check: "serve-divergence", detail: err.Error()}
	}

	// 8b: seeded mixed client schedule — reads interleaved with
	// post-crash writes, the background sweeper racing both. The
	// reference applies the same writes, in commit order, on top of the
	// oracle state.
	eng2, err := serve.New(db, serve.Options{Recorder: rec, Sweeper: true})
	if err != nil {
		return &disagreement{check: "serve-error", detail: err.Error()}
	}
	defer eng2.Close()
	var maxID model.OpID
	for _, op := range cell.History.Ops {
		if op.ID() > maxID {
			maxID = op.ID()
		}
	}
	ref := oracle.Clone()
	nextID := maxID + 1
	for i := 0; i < 2*len(pages); i++ {
		p := pages[rng.Intn(len(pages))]
		if rng.Float64() < 0.3 {
			op := model.ReadWrite(nextID, "post", []model.Var{p}, []model.Var{p})
			nextID++
			if err := eng2.Exec(op); err != nil {
				return &disagreement{check: "serve-exec-error",
					detail: fmt.Sprintf("%s (touch seed %d): %v", op, seed, err)}
			}
			if _, err := ref.Apply(op); err != nil {
				return &disagreement{check: "serve-exec-error", detail: err.Error()}
			}
		} else {
			v, err := eng2.Read(p)
			if err != nil {
				return &disagreement{check: "serve-error",
					detail: fmt.Sprintf("mixed read %s (touch seed %d): %v", p, seed, err)}
			}
			if want := ref.Get(p); v != want {
				return &disagreement{check: "serve-mixed-read",
					detail: fmt.Sprintf("page %s served %q mid-stream, oracle+writes has %q (touch seed %d)",
						p, v, want, seed)}
			}
		}
	}
	if err := eng2.Drain(); err != nil {
		return &disagreement{check: "serve-error", detail: "mixed drain: " + err.Error()}
	}
	res2, err := eng2.Result()
	if err != nil {
		return &disagreement{check: "serve-error", detail: err.Error()}
	}
	if !res2.State.Equal(ref) {
		return &disagreement{check: "serve-mixed-divergence",
			detail: fmt.Sprintf("drained state diverges from oracle+writes on %v (touch seed %d)",
				res2.State.Diff(ref), seed)}
	}
	return nil
}

// checkShardedLeg is oracle leg 9: the sharded differential oracle
// (sim.CheckSharded) over a run shaped like the cell — same method,
// same length, schedule seed mixed from the cell's, and per-shard
// failure points staggered off the cell's crash point so the grid
// sweeps shard-crash placements exactly as it sweeps single-log crash
// points.
func checkShardedLeg(m sim.NamedFactory, cell Cell, rec *obs.Recorder) *disagreement {
	if !shard.Eligible(m.Name) || len(cell.History.Ops) == 0 {
		return nil
	}
	numOps := len(cell.History.Ops)
	crashes := make([]int, 2)
	for i := range crashes {
		crashes[i] = cell.Crash + 2*i
		if crashes[i] > numOps {
			crashes[i] = numOps
		}
	}
	check, err := sim.CheckSharded(sim.ShardedConfig{
		Method:        m,
		Shards:        2,
		NumOps:        numOps,
		PagesPerShard: (cell.History.Pages + 1) / 2,
		Seed:          sim.MixSeed(cell.Schedule.Seed, 9),
		Crashes:       crashes,
		Recorder:      rec,
	})
	if err != nil {
		return &disagreement{check: "sharded-error", detail: err.Error()}
	}
	rec.Inc(MShardCells)
	if !check.OK() {
		return &disagreement{check: "sharded-oracle",
			detail: fmt.Sprintf("crashes %v: %s", crashes, check.Mismatch)}
	}
	return nil
}

func auditViolations(deg *method.DegradedResult) interface{} {
	if deg.Audit == nil {
		return "no audit report"
	}
	return deg.Audit.Violations
}
