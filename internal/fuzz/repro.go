package fuzz

import (
	"encoding/json"
	"fmt"
	"os"

	"redotheory/internal/model"
	"redotheory/internal/obs"
	"redotheory/internal/sim"
)

// ArtifactSchemaV1 is the original repro artifact format.
const ArtifactSchemaV1 = "redotheory/fuzzrepro/v1"

// ArtifactSchemaV2 extends v1 with the supervised-recovery nested-crash
// schedule. New artifacts are written as v2; v1 artifacts still decode,
// validate, and replay (their nested schedule is simply empty).
const ArtifactSchemaV2 = "redotheory/fuzzrepro/v2"

// OpSpec is the serializable form of one history operation. Every fuzz
// history is built from model.ReadWrite operations, whose behavior (the
// per-write digest of the values read, salted with the id and target) is
// a pure function of these four fields — so the spec reconstructs an
// operation that is bit-identical in effect to the original.
type OpSpec struct {
	ID     int64    `json:"id"`
	Name   string   `json:"name"`
	Reads  []string `json:"reads,omitempty"`
	Writes []string `json:"writes"`
}

// Artifact is a self-contained failing-cell description: everything
// needed to re-execute the cell and re-run the oracle, with no
// dependence on the workload generators that produced it.
type Artifact struct {
	Schema string `json:"schema"`
	// Method names the recovery method under test.
	Method string `json:"method"`
	// Shape records the originating workload shape (informational).
	Shape string `json:"shape,omitempty"`
	// Pages is the page-set size of the initial state.
	Pages int `json:"pages"`
	// Ops is the minimized history.
	Ops []OpSpec `json:"ops"`
	// Crash is the crash point (operations executed before the crash).
	Crash int `json:"crash"`
	// Schedule is the background-activity schedule.
	Schedule Schedule `json:"schedule"`
	// Workers is the parallel-recovery pool size (0 means the default).
	Workers int `json:"workers,omitempty"`
	// NestedCrash is the supervised-recovery leg's crash-during-recovery
	// schedule (v2; absent in v1 artifacts).
	NestedCrash []int `json:"nested_crash,omitempty"`
	// Check and Detail record the disagreement the artifact reproduces.
	Check  string `json:"check,omitempty"`
	Detail string `json:"detail,omitempty"`
	// Flight is the flight-recorder dump captured while the cell failed:
	// the bounded telemetry ring leading into the disagreement, plus any
	// crash snapshots the supervised leg preserved. Optional, so v2
	// artifacts without it stay valid.
	Flight *obs.FlightDump `json:"flight,omitempty"`
}

// NewArtifact serializes a cell into an artifact.
func NewArtifact(cell Cell, check, detail string) *Artifact {
	a := &Artifact{
		Schema:      ArtifactSchemaV2,
		Method:      cell.History.Method,
		Shape:       cell.History.Shape,
		Pages:       cell.History.Pages,
		Crash:       cell.Crash,
		Schedule:    cell.Schedule,
		Workers:     cell.Workers,
		NestedCrash: cell.NestedCrash,
		Check:       check,
		Detail:      detail,
	}
	for _, op := range cell.History.Ops {
		a.Ops = append(a.Ops, OpSpec{
			ID:     int64(op.ID()),
			Name:   op.Name(),
			Reads:  varsToStrings(op.Reads()),
			Writes: varsToStrings(op.Writes()),
		})
	}
	return a
}

// Validate checks the artifact's structural contract. Both schema
// versions are accepted; the nested-crash schedule is a v2 field, so a
// v1 artifact carrying one is malformed.
func (a *Artifact) Validate() error {
	switch a.Schema {
	case ArtifactSchemaV2:
	case ArtifactSchemaV1:
		if len(a.NestedCrash) > 0 {
			return fmt.Errorf("fuzz: v1 artifact carries a nested-crash schedule (a %s field)", ArtifactSchemaV2)
		}
	default:
		return fmt.Errorf("fuzz: artifact schema is %q, want %q or %q", a.Schema, ArtifactSchemaV1, ArtifactSchemaV2)
	}
	if a.Method == "" {
		return fmt.Errorf("fuzz: artifact names no method")
	}
	if a.Pages <= 0 {
		return fmt.Errorf("fuzz: artifact page count %d", a.Pages)
	}
	if a.Crash < 0 || a.Crash > len(a.Ops) {
		return fmt.Errorf("fuzz: artifact crash point %d out of range [0,%d]", a.Crash, len(a.Ops))
	}
	for i, op := range a.Ops {
		if len(op.Writes) == 0 {
			return fmt.Errorf("fuzz: artifact op %d (%q) has no writes", i, op.Name)
		}
		if op.ID <= 0 {
			return fmt.Errorf("fuzz: artifact op %d (%q) has non-positive id %d", i, op.Name, op.ID)
		}
	}
	if a.Flight != nil {
		if err := a.Flight.Validate(); err != nil {
			return fmt.Errorf("fuzz: artifact flight dump: %w", err)
		}
	}
	return nil
}

// Cell materializes the artifact back into a runnable cell.
func (a *Artifact) Cell() (Cell, error) {
	if err := a.Validate(); err != nil {
		return Cell{}, err
	}
	hist := History{Method: a.Method, Shape: a.Shape, Pages: a.Pages}
	for _, spec := range a.Ops {
		hist.Ops = append(hist.Ops, model.ReadWrite(model.OpID(spec.ID), spec.Name,
			stringsToVars(spec.Reads), stringsToVars(spec.Writes)))
	}
	return Cell{History: hist, Crash: a.Crash, Schedule: a.Schedule, Workers: a.Workers, NestedCrash: a.NestedCrash}, nil
}

// Encode renders the artifact as indented JSON.
func (a *Artifact) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("fuzz: encoding artifact: %w", err)
	}
	return append(data, '\n'), nil
}

// DecodeArtifact parses and validates an artifact.
func DecodeArtifact(data []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("fuzz: decoding artifact: %w", err)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &a, nil
}

// ReadArtifactFile loads an artifact from disk.
func ReadArtifactFile(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fuzz: reading artifact: %w", err)
	}
	a, err := DecodeArtifact(data)
	if err != nil {
		return nil, fmt.Errorf("fuzz: %s: %w", path, err)
	}
	return a, nil
}

// WriteFile writes the artifact as JSON.
func (a *Artifact) WriteFile(path string) error {
	data, err := a.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("fuzz: writing artifact: %w", err)
	}
	return nil
}

// Replay re-executes the artifact's cell against the named method and
// re-runs the full oracle. A nil return means every leg agreed — the
// recorded disagreement no longer reproduces. The methods table supplies
// the factory (use sim.DefaultMethods()).
func Replay(methods []sim.NamedFactory, a *Artifact) (*Failure, error) {
	cell, err := a.Cell()
	if err != nil {
		return nil, err
	}
	for _, m := range methods {
		if m.Name != a.Method {
			continue
		}
		dis, _, err := checkCell(m, cell, nil, nil)
		if err != nil {
			return nil, err
		}
		if dis == nil {
			return nil, nil
		}
		return &Failure{Cell: cell, Check: dis.check, Detail: dis.detail, Artifact: a}, nil
	}
	return nil, fmt.Errorf("fuzz: artifact method %q not in the method table", a.Method)
}

// GoSource renders the artifact as a standalone main package that
// replays it: the repro a bug report can carry without any reference to
// the fuzzing run that produced it.
func (a *Artifact) GoSource() ([]byte, error) {
	data, err := a.Encode()
	if err != nil {
		return nil, err
	}
	src := fmt.Sprintf(`// Generated by redofuzz: standalone replay of one fuzz repro artifact.
// Run from the repository root:
//
//	go run ./path/to/this/file
//
// Exit status 1 means the recorded oracle disagreement still reproduces.
package main

import (
	"fmt"
	"os"

	"redotheory/internal/fuzz"
	"redotheory/internal/sim"
)

const artifactJSON = %s

func main() {
	a, err := fuzz.DecodeArtifact([]byte(artifactJSON))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fail, err := fuzz.Replay(sim.DefaultMethods(), a)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if fail != nil {
		fmt.Printf("reproduced: %%s: %%s\n", fail.Check, fail.Detail)
		os.Exit(1)
	}
	fmt.Printf("cell passes: recorded disagreement (%%s) no longer reproduces\n", a.Check)
}
`, "`"+string(data)+"`")
	return []byte(src), nil
}

func varsToStrings(vs []model.Var) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = string(v)
	}
	return out
}

func stringsToVars(ss []string) []model.Var {
	out := make([]model.Var, len(ss))
	for i, s := range ss {
		out[i] = model.Var(s)
	}
	return out
}
