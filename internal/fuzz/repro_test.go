package fuzz

import (
	"path/filepath"
	"strings"
	"testing"

	"redotheory/internal/model"
	"redotheory/internal/sim"
	"redotheory/internal/workload"
)

// TestArtifactRoundTripPreservesBehavior pins the OpSpec contract: an
// operation reconstructed from its artifact spec computes bit-identical
// writes, because ReadWrite's digest is a pure function of (id, name,
// reads, writes) and the values read.
func TestArtifactRoundTripPreservesBehavior(t *testing.T) {
	cell := mkCell(t, "genlsn", 8, 5, scheduleProfiles[1])
	cell.Schedule.Seed = 21
	art := NewArtifact(cell, "sequential-oracle", "test detail")
	data, err := art.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Method != cell.History.Method || back.Crash != cell.Crash || back.Schedule != cell.Schedule {
		t.Fatalf("artifact coordinates diverge: %+v", back)
	}
	rebuilt, err := back.Cell()
	if err != nil {
		t.Fatal(err)
	}

	// Same ops, same behavior: apply both histories to fresh states.
	apply := func(ops []*model.Op) *model.State {
		s := workload.InitialState(workload.Pages(cell.History.Pages))
		for _, op := range ops {
			if _, err := s.Apply(op); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	if !apply(cell.History.Ops).Equal(apply(rebuilt.History.Ops)) {
		t.Fatal("reconstructed history computes different states")
	}
}

// TestReplayPassesOnCleanCell: replaying an artifact of a passing cell
// reports no failure, twice, deterministically.
func TestReplayPassesOnCleanCell(t *testing.T) {
	cell := mkCell(t, "physiological", 6, 4, scheduleProfiles[0])
	cell.Schedule.Seed = 17
	art := NewArtifact(cell, "", "")
	for i := 0; i < 2; i++ {
		fail, err := Replay(sim.DefaultMethods(), art)
		if err != nil {
			t.Fatal(err)
		}
		if fail != nil {
			t.Fatalf("replay %d reports %s: %s", i, fail.Check, fail.Detail)
		}
	}
}

// TestReplayUnknownMethodErrors: an artifact naming a method outside the
// table is an error, not a silent pass.
func TestReplayUnknownMethodErrors(t *testing.T) {
	cell := mkCell(t, "physiological", 4, 2, Schedule{Seed: 1})
	art := NewArtifact(cell, "", "")
	art.Method = "no-such-method"
	if _, err := Replay(sim.DefaultMethods(), art); err == nil {
		t.Fatal("unknown method replayed without error")
	}
}

// TestArtifactValidateRejectsCorruptInputs mirrors the obs report
// hardening: a malformed artifact errors clearly instead of producing a
// zero-value cell.
func TestArtifactValidateRejectsCorruptInputs(t *testing.T) {
	base := func() *Artifact {
		return NewArtifact(mkCell(t, "physical", 4, 3, Schedule{Seed: 1}), "c", "d")
	}
	cases := []struct {
		name   string
		mutate func(*Artifact)
		want   string
	}{
		{"wrong schema", func(a *Artifact) { a.Schema = "bogus" }, "schema"},
		{"no method", func(a *Artifact) { a.Method = "" }, "method"},
		{"zero pages", func(a *Artifact) { a.Pages = 0 }, "page count"},
		{"crash out of range", func(a *Artifact) { a.Crash = len(a.Ops) + 1 }, "out of range"},
		{"negative crash", func(a *Artifact) { a.Crash = -1 }, "out of range"},
		{"op without writes", func(a *Artifact) { a.Ops[0].Writes = nil }, "no writes"},
		{"non-positive op id", func(a *Artifact) { a.Ops[0].ID = 0 }, "non-positive id"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := base()
			c.mutate(a)
			err := a.Validate()
			if err == nil {
				t.Fatal("corrupt artifact validated")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error does not mention %q: %v", c.want, err)
			}
		})
	}
	if _, err := DecodeArtifact([]byte(`{"schema":`)); err == nil {
		t.Fatal("truncated artifact decoded")
	}
	if _, err := DecodeArtifact([]byte(`null`)); err == nil {
		t.Fatal("null artifact decoded")
	}
}

// TestArtifactFileRoundTrip writes and reloads an artifact.
func TestArtifactFileRoundTrip(t *testing.T) {
	art := NewArtifact(mkCell(t, "grouplsn", 5, 5, scheduleProfiles[2]), "parallel-divergence", "x")
	path := filepath.Join(t.TempDir(), "repro.json")
	if err := art.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArtifactFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Check != "parallel-divergence" || len(back.Ops) != len(art.Ops) {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

// TestArtifactV1BackwardCompat: v1 artifacts written before the
// nested-crash field existed still decode, validate, and replay — the
// shipped example artifact is the fixture. Its recorded disagreement was
// a synthetic walkthrough bug, so the replay must come back clean (the
// supervised leg runs with an empty nested schedule).
func TestArtifactV1BackwardCompat(t *testing.T) {
	art, err := ReadArtifactFile(filepath.Join("..", "..", "examples", "fuzzrepro", "repro.json"))
	if err != nil {
		t.Fatal(err)
	}
	if art.Schema != ArtifactSchemaV1 {
		t.Fatalf("example artifact schema %q; the fixture must stay v1", art.Schema)
	}
	if len(art.NestedCrash) != 0 {
		t.Fatalf("v1 artifact decoded with a nested schedule: %v", art.NestedCrash)
	}
	cell, err := art.Cell()
	if err != nil {
		t.Fatal(err)
	}
	if cell.NestedCrash != nil {
		t.Fatalf("v1 cell carries a nested schedule: %v", cell.NestedCrash)
	}
	fail, err := Replay(sim.DefaultMethods(), art)
	if err != nil {
		t.Fatal(err)
	}
	if fail != nil {
		t.Fatalf("v1 artifact replay reports %s: %s", fail.Check, fail.Detail)
	}
	// A v1 artifact smuggling the v2 field is malformed.
	bad := *art
	bad.NestedCrash = []int{1}
	if err := bad.Validate(); err == nil {
		t.Fatal("v1 artifact with nested_crash validated")
	}
}

// TestArtifactV2RoundTripNestedCrash: the nested-crash schedule survives
// the encode/decode/Cell round trip.
func TestArtifactV2RoundTrip(t *testing.T) {
	cell := mkCell(t, "physiological", 6, 4, scheduleProfiles[0])
	cell.Schedule.Seed = 13
	cell.NestedCrash = []int{2, 0}
	art := NewArtifact(cell, "", "")
	if art.Schema != ArtifactSchemaV2 {
		t.Fatalf("new artifact schema = %q", art.Schema)
	}
	data, err := art.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := back.Cell()
	if err != nil {
		t.Fatal(err)
	}
	if len(rebuilt.NestedCrash) != 2 || rebuilt.NestedCrash[0] != 2 || rebuilt.NestedCrash[1] != 0 {
		t.Fatalf("nested schedule lost in round trip: %v", rebuilt.NestedCrash)
	}
	if fail, err := Replay(sim.DefaultMethods(), back); err != nil || fail != nil {
		t.Fatalf("v2 replay: fail=%v err=%v", fail, err)
	}
}

// TestGoSourceEmbedsArtifact: the generated standalone repro embeds the
// JSON and the replay entry points.
func TestGoSourceEmbedsArtifact(t *testing.T) {
	art := NewArtifact(mkCell(t, "logical", 3, 2, Schedule{Seed: 9}), "invariant", "d")
	src, err := art.GoSource()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"package main", "fuzz.DecodeArtifact", "fuzz.Replay", ArtifactSchemaV2, `"method": "logical"`} {
		if !strings.Contains(string(src), want) {
			t.Fatalf("generated source missing %q:\n%s", want, src)
		}
	}
}
