package fuzz

import (
	"testing"
	"time"

	"redotheory/internal/model"
	"redotheory/internal/obs"
)

// TestCleanGridAgrees is the fuzzer's own soundness check: over the full
// default method table, every clean cell must pass all six oracle legs.
// A failure here is a real recovery bug (or an oracle bug), never noise.
func TestCleanGridAgrees(t *testing.T) {
	rec := obs.New()
	rep, err := Run(Config{Seeds: 1, Histories: 1, MaxOps: 8, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures {
		t.Errorf("oracle disagreement: %s: %s: %s", f.Cell.String(), f.Check, f.Detail)
	}
	// 26 shapes across the 7 methods, 9 crash points each.
	if rep.Cells < 200 {
		t.Fatalf("grid covered only %d cells", rep.Cells)
	}
	if rep.Histories != 26 {
		t.Fatalf("histories = %d, want 26 (one per method × shape)", rep.Histories)
	}
	if len(rep.PartitionShapes) < 2 {
		t.Fatalf("partition-shape coverage %v is degenerate", rep.PartitionShapes)
	}
	if rep.RedoSizes < 2 {
		t.Fatalf("redo-size coverage %d is degenerate", rep.RedoSizes)
	}
	if got := rec.CounterValue(MCells); got != int64(rep.Cells) {
		t.Fatalf("recorder cells = %d, report says %d", got, rep.Cells)
	}
	if rec.CounterValue(MDisagreements) != 0 {
		t.Fatalf("recorder counted disagreements on a clean grid")
	}
}

// TestFaultCellsNeverSilent runs the Faults mode: every fault kind is
// exercised per history, and no cell may classify as silent corruption.
func TestFaultCellsNeverSilent(t *testing.T) {
	rep, err := Run(Config{Seeds: 1, Histories: 1, MaxOps: 8, Faults: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures {
		t.Errorf("failure: %s: %s: %s", f.Cell.String(), f.Check, f.Detail)
	}
	if len(rep.FaultKinds) != 6 {
		t.Fatalf("fault kinds exercised = %v, want all 6", rep.FaultKinds)
	}
	if rep.FaultCells != rep.Histories*6 {
		t.Fatalf("fault cells = %d, want %d (histories × kinds)", rep.FaultCells, rep.Histories*6)
	}
}

// TestRunIsDeterministic pins seeded reproducibility: two runs with the
// same config must produce identical coverage and cell counts.
func TestRunIsDeterministic(t *testing.T) {
	run := func() *Report {
		rep, err := Run(Config{Seeds: 2, Histories: 1, MaxOps: 6})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Cells != b.Cells || a.Histories != b.Histories || a.RedoSizes != b.RedoSizes {
		t.Fatalf("runs diverge: %+v vs %+v", a, b)
	}
	if len(a.PartitionShapes) != len(b.PartitionShapes) {
		t.Fatalf("partition-shape coverage diverges: %v vs %v", a.PartitionShapes, b.PartitionShapes)
	}
	for i := range a.PartitionShapes {
		if a.PartitionShapes[i] != b.PartitionShapes[i] {
			t.Fatalf("partition-shape coverage diverges at %d: %v vs %v", i, a.PartitionShapes, b.PartitionShapes)
		}
	}
}

// TestBudgetTruncatesCleanly pins the budget contract: an expired budget
// stops the grid and marks the report truncated instead of erroring.
func TestBudgetTruncatesCleanly(t *testing.T) {
	rep, err := Run(Config{Seeds: 100, Histories: 100, MaxOps: 8, Budget: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Fatalf("nanosecond budget did not truncate the run: %d cells", rep.Cells)
	}
}

// TestInjectedOracleBugIsCaught wires a synthetic oracle bug through the
// test-only hook and asserts the fuzzer reports it: the differential
// harness itself (generation → execution → oracle → failure collection)
// detects a planted disagreement.
func TestInjectedOracleBugIsCaught(t *testing.T) {
	bug := func(ops []*model.Op, crash int) string {
		for _, op := range ops[:crash] {
			if op.WritesVar("pg01") {
				return "synthetic disagreement: pg01 written before the crash"
			}
		}
		return ""
	}
	rec := obs.New()
	rep, err := Run(Config{Seeds: 1, Histories: 1, MaxOps: 8, Recorder: rec, failCheck: bug})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) == 0 {
		t.Fatal("planted oracle bug produced no failures")
	}
	for _, f := range rep.Failures {
		if f.Check != "injected" {
			t.Fatalf("failure check = %q, want %q", f.Check, "injected")
		}
		if f.Artifact == nil {
			t.Fatal("failure carries no artifact")
		}
	}
	if got := rec.CounterValue(MDisagreements); got != int64(len(rep.Failures)) {
		t.Fatalf("recorder disagreements = %d, report has %d", got, len(rep.Failures))
	}
}

// TestExecuteHonorsLiteralZeroProbabilities distinguishes the fuzzer's
// execution loop from sim.Run: a schedule of literal zeros must perform
// no background flushes, forces, or checkpoints — sim.Config would remap
// those zeros to its defaults, which would make shrunk quiet schedules
// unrepresentable.
func TestExecuteHonorsLiteralZeroProbabilities(t *testing.T) {
	cell := mkCell(t, "physiological", 6, 6, Schedule{Seed: 7})
	db, err := execute(factoryFor(t, "physiological"), cell, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.PageFlushes != 0 || st.Checkpoints != 0 {
		t.Fatalf("quiet schedule still flushed/checkpointed: %+v", st)
	}
	// Nothing was forced or stolen, so no operation survives the crash.
	if n := db.StableLog().Len(); n != 0 {
		t.Fatalf("quiet schedule left %d stable records", n)
	}
}

// TestInjectedBugArtifactCarriesFlightDump: a planted oracle bug must
// produce a repro artifact whose flight dump is non-empty and valid —
// the telemetry ring leading into the disagreement ships with the
// repro. With shrinking on, the dump is re-captured against the
// minimized cell.
func TestInjectedBugArtifactCarriesFlightDump(t *testing.T) {
	bug := func(ops []*model.Op, crash int) string {
		if crash > 0 {
			return "synthetic disagreement at any non-trivial crash point"
		}
		return ""
	}
	for _, shrink := range []bool{false, true} {
		rep, err := Run(Config{Seeds: 1, Histories: 1, MaxOps: 8, Shrink: shrink, failCheck: bug})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Failures) == 0 {
			t.Fatalf("shrink=%v: planted bug produced no failures", shrink)
		}
		for _, f := range rep.Failures {
			if f.Artifact == nil {
				t.Fatalf("shrink=%v: failure carries no artifact", shrink)
			}
			fl := f.Artifact.Flight
			if fl == nil {
				t.Fatalf("shrink=%v: artifact carries no flight dump", shrink)
			}
			if err := fl.Validate(); err != nil {
				t.Fatalf("shrink=%v: %v", shrink, err)
			}
			if len(fl.Events) == 0 {
				t.Fatalf("shrink=%v: flight dump is empty", shrink)
			}
			// The artifact round-trips with the dump attached.
			data, err := f.Artifact.Encode()
			if err != nil {
				t.Fatal(err)
			}
			back, err := DecodeArtifact(data)
			if err != nil {
				t.Fatal(err)
			}
			if back.Flight == nil || len(back.Flight.Events) != len(fl.Events) {
				t.Fatalf("shrink=%v: flight dump lost in round trip", shrink)
			}
		}
	}
}

// TestSupervisedLegPreservesCrashSnapshots: the oracle threads the
// flight ring into its supervised leg, so every nested crash the
// schedule injects leaves a labeled snapshot in the ring — even when
// the leg then converges (the leg's attempt budget always exceeds the
// schedule, so convergence is the only terminal outcome here).
func TestSupervisedLegPreservesCrashSnapshots(t *testing.T) {
	// No page flushes and a forced log: every stable op needs redo, so
	// the supervised attempts have installs for the schedule to crash.
	cell := mkCell(t, "physiological", 8, 8, Schedule{Seed: 3, ForceProb: 1})
	cell.NestedCrash = []int{0, 1}
	rec := obs.New()
	flight := obs.NewFlightRecorder(512)
	rec.SetSink(flight)
	dis, _, err := checkCellRun(namedFor(t, "physiological"), cell, rec, flight, nil)
	rec.SetSink(nil)
	if err != nil {
		t.Fatal(err)
	}
	if dis != nil {
		t.Fatalf("clean cell disagreed: %s: %s", dis.check, dis.detail)
	}
	d := flight.Dump()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(d.Snapshots); got != len(cell.NestedCrash) {
		t.Fatalf("%d crash snapshots preserved, want one per nested crash (%d)", got, len(cell.NestedCrash))
	}
	for i, s := range d.Snapshots {
		if s.Label == "" || len(s.Events) == 0 {
			t.Fatalf("snapshot %d is unlabeled or empty", i)
		}
	}
}
