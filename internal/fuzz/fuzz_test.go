package fuzz

import (
	"testing"
	"time"

	"redotheory/internal/model"
	"redotheory/internal/obs"
)

// TestCleanGridAgrees is the fuzzer's own soundness check: over the full
// default method table, every clean cell must pass all six oracle legs.
// A failure here is a real recovery bug (or an oracle bug), never noise.
func TestCleanGridAgrees(t *testing.T) {
	rec := obs.New()
	rep, err := Run(Config{Seeds: 1, Histories: 1, MaxOps: 8, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures {
		t.Errorf("oracle disagreement: %s: %s: %s", f.Cell.String(), f.Check, f.Detail)
	}
	// 19 shapes across the 7 methods, 9 crash points each.
	if rep.Cells < 150 {
		t.Fatalf("grid covered only %d cells", rep.Cells)
	}
	if rep.Histories != 19 {
		t.Fatalf("histories = %d, want 19 (one per method × shape)", rep.Histories)
	}
	if len(rep.PartitionShapes) < 2 {
		t.Fatalf("partition-shape coverage %v is degenerate", rep.PartitionShapes)
	}
	if rep.RedoSizes < 2 {
		t.Fatalf("redo-size coverage %d is degenerate", rep.RedoSizes)
	}
	if got := rec.CounterValue(MCells); got != int64(rep.Cells) {
		t.Fatalf("recorder cells = %d, report says %d", got, rep.Cells)
	}
	if rec.CounterValue(MDisagreements) != 0 {
		t.Fatalf("recorder counted disagreements on a clean grid")
	}
}

// TestFaultCellsNeverSilent runs the Faults mode: every fault kind is
// exercised per history, and no cell may classify as silent corruption.
func TestFaultCellsNeverSilent(t *testing.T) {
	rep, err := Run(Config{Seeds: 1, Histories: 1, MaxOps: 8, Faults: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures {
		t.Errorf("failure: %s: %s: %s", f.Cell.String(), f.Check, f.Detail)
	}
	if len(rep.FaultKinds) != 6 {
		t.Fatalf("fault kinds exercised = %v, want all 6", rep.FaultKinds)
	}
	if rep.FaultCells != rep.Histories*6 {
		t.Fatalf("fault cells = %d, want %d (histories × kinds)", rep.FaultCells, rep.Histories*6)
	}
}

// TestRunIsDeterministic pins seeded reproducibility: two runs with the
// same config must produce identical coverage and cell counts.
func TestRunIsDeterministic(t *testing.T) {
	run := func() *Report {
		rep, err := Run(Config{Seeds: 2, Histories: 1, MaxOps: 6})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Cells != b.Cells || a.Histories != b.Histories || a.RedoSizes != b.RedoSizes {
		t.Fatalf("runs diverge: %+v vs %+v", a, b)
	}
	if len(a.PartitionShapes) != len(b.PartitionShapes) {
		t.Fatalf("partition-shape coverage diverges: %v vs %v", a.PartitionShapes, b.PartitionShapes)
	}
	for i := range a.PartitionShapes {
		if a.PartitionShapes[i] != b.PartitionShapes[i] {
			t.Fatalf("partition-shape coverage diverges at %d: %v vs %v", i, a.PartitionShapes, b.PartitionShapes)
		}
	}
}

// TestBudgetTruncatesCleanly pins the budget contract: an expired budget
// stops the grid and marks the report truncated instead of erroring.
func TestBudgetTruncatesCleanly(t *testing.T) {
	rep, err := Run(Config{Seeds: 100, Histories: 100, MaxOps: 8, Budget: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Fatalf("nanosecond budget did not truncate the run: %d cells", rep.Cells)
	}
}

// TestInjectedOracleBugIsCaught wires a synthetic oracle bug through the
// test-only hook and asserts the fuzzer reports it: the differential
// harness itself (generation → execution → oracle → failure collection)
// detects a planted disagreement.
func TestInjectedOracleBugIsCaught(t *testing.T) {
	bug := func(ops []*model.Op, crash int) string {
		for _, op := range ops[:crash] {
			if op.WritesVar("pg01") {
				return "synthetic disagreement: pg01 written before the crash"
			}
		}
		return ""
	}
	rec := obs.New()
	rep, err := Run(Config{Seeds: 1, Histories: 1, MaxOps: 8, Recorder: rec, failCheck: bug})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) == 0 {
		t.Fatal("planted oracle bug produced no failures")
	}
	for _, f := range rep.Failures {
		if f.Check != "injected" {
			t.Fatalf("failure check = %q, want %q", f.Check, "injected")
		}
		if f.Artifact == nil {
			t.Fatal("failure carries no artifact")
		}
	}
	if got := rec.CounterValue(MDisagreements); got != int64(len(rep.Failures)) {
		t.Fatalf("recorder disagreements = %d, report has %d", got, len(rep.Failures))
	}
}

// TestExecuteHonorsLiteralZeroProbabilities distinguishes the fuzzer's
// execution loop from sim.Run: a schedule of literal zeros must perform
// no background flushes, forces, or checkpoints — sim.Config would remap
// those zeros to its defaults, which would make shrunk quiet schedules
// unrepresentable.
func TestExecuteHonorsLiteralZeroProbabilities(t *testing.T) {
	cell := mkCell(t, "physiological", 6, 6, Schedule{Seed: 7})
	db, err := execute(factoryFor(t, "physiological"), cell, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.PageFlushes != 0 || st.Checkpoints != 0 {
		t.Fatalf("quiet schedule still flushed/checkpointed: %+v", st)
	}
	// Nothing was forced or stolen, so no operation survives the crash.
	if n := db.StableLog().Len(); n != 0 {
		t.Fatalf("quiet schedule left %d stable records", n)
	}
}
