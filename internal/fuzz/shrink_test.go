package fuzz

import (
	"testing"

	"redotheory/internal/model"
)

// twoWritesBug is the synthetic oracle bug the shrink tests plant: a
// cell "fails" when at least two executed operations write pg00. The
// minimal failing cell is therefore exactly two operations, both
// crashing-side writers of pg00, under any schedule — which is what the
// shrinker must find.
func twoWritesBug(ops []*model.Op, crash int) string {
	n := 0
	for _, op := range ops[:crash] {
		if op.WritesVar("pg00") {
			n++
		}
	}
	if n >= 2 {
		return "synthetic: two writes to pg00 before the crash"
	}
	return ""
}

// TestShrinkMinimizesInjectedBug is the acceptance check for the
// shrinker: fed a failing cell from the planted oracle bug, it must
// produce a minimized repro of at most 8 operations (here: exactly 2),
// with the crash point at the end of the kept prefix and the schedule
// simplified to silence.
func TestShrinkMinimizesInjectedBug(t *testing.T) {
	rep, err := Run(Config{Seeds: 1, Histories: 1, MaxOps: 12, Shrink: true, failCheck: twoWritesBug})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) == 0 {
		t.Fatal("planted bug produced no failures")
	}
	for _, f := range rep.Failures {
		min := f.Minimized
		if min == nil {
			t.Fatalf("failure %s was not shrunk", f.Cell.String())
		}
		if len(min.History.Ops) > 8 {
			t.Fatalf("minimized history has %d ops, want ≤ 8", len(min.History.Ops))
		}
		if len(min.History.Ops) != 2 {
			t.Errorf("minimized history has %d ops, the planted bug needs exactly 2", len(min.History.Ops))
		}
		if min.Crash != len(min.History.Ops) {
			t.Errorf("minimized crash %d is not the full kept prefix (%d ops)", min.Crash, len(min.History.Ops))
		}
		for _, op := range min.History.Ops {
			if !op.WritesVar("pg00") {
				t.Errorf("minimized history keeps an irrelevant op %s", op)
			}
		}
		if s := min.Schedule; s.FlushProb != 0 || s.ForceProb != 0 || s.CheckpointProb != 0 || s.TruncateProb != 0 {
			t.Errorf("schedule was not silenced: %+v", s)
		}
		// The minimized cell still fails under re-execution.
		dis, _, err := checkCell(namedFor(t, min.History.Method), *min, nil, twoWritesBug)
		if err != nil {
			t.Fatal(err)
		}
		if dis == nil {
			t.Fatalf("minimized cell does not reproduce the failure")
		}
	}
}

// TestShrinkIsDeterministic runs the shrinker twice over the same
// failing cell and requires identical minimized cells.
func TestShrinkIsDeterministic(t *testing.T) {
	cell := mkCell(t, "physical", 12, 12, scheduleProfiles[0])
	cell.Schedule.Seed = 99
	m := namedFor(t, "physical")
	a := Shrink(m, cell, twoWritesBug)
	b := Shrink(m, cell, twoWritesBug)
	if a == nil || b == nil {
		t.Fatal("shrink did not reproduce the failure")
	}
	if a.Crash != b.Crash || len(a.History.Ops) != len(b.History.Ops) || a.Schedule != b.Schedule {
		t.Fatalf("shrink diverges:\n%+v\n%+v", a, b)
	}
	for i := range a.History.Ops {
		if a.History.Ops[i].ID() != b.History.Ops[i].ID() {
			t.Fatalf("shrunk op lists diverge at %d", i)
		}
	}
}

// TestShrinkReturnsNilOnNonFailure: a cell that passes the oracle is not
// shrinkable.
func TestShrinkReturnsNilOnNonFailure(t *testing.T) {
	cell := mkCell(t, "physiological", 6, 6, scheduleProfiles[0])
	cell.Schedule.Seed = 5
	if got := Shrink(namedFor(t, "physiological"), cell, nil); got != nil {
		t.Fatalf("shrinking a passing cell returned %+v", got)
	}
}

// TestDDMinProperties drives ddmin directly with a predicate over op
// IDs: the result must still fail and be 1-minimal under chunk removal
// for the simple "contains ops 3 and 7" predicate.
func TestDDMinProperties(t *testing.T) {
	var ops []*model.Op
	for i := 1; i <= 12; i++ {
		ops = append(ops, model.ReadWrite(model.OpID(i), "u", nil, []model.Var{"x"}))
	}
	fails := func(cand []*model.Op) bool {
		has := map[model.OpID]bool{}
		for _, op := range cand {
			has[op.ID()] = true
		}
		return has[3] && has[7]
	}
	got := ddmin(ops, fails)
	if !fails(got) {
		t.Fatal("ddmin returned a passing candidate")
	}
	if len(got) != 2 || got[0].ID() != 3 || got[1].ID() != 7 {
		ids := make([]model.OpID, len(got))
		for i, op := range got {
			ids[i] = op.ID()
		}
		t.Fatalf("ddmin kept %v, want [3 7]", ids)
	}
}
