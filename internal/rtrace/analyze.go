package rtrace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"redotheory/internal/obs"
)

// CriticalPath walks the span tree from the root picking, at every
// level, the child the parent had to wait for — the one that finished
// last. For the parallel engine that is the chain recover → replay →
// slowest component: shortening any span on the path shortens the
// recovery, which is exactly the profiler's definition of critical.
func CriticalPath(root *Node) []*Node {
	if root == nil {
		return nil
	}
	path := []*Node{root}
	n := root
	for len(n.Children) > 0 {
		var last *Node
		for _, c := range n.Children {
			if last == nil || c.End > last.End {
				last = c
			}
		}
		path = append(path, last)
		n = last
	}
	return path
}

// Stragglers returns the recovery's component spans sorted
// slowest-first — the parallel replay straggler table.
func Stragglers(rec *Recovery) []*Node {
	var comps []*Node
	rec.Walk(func(n *Node, _ int) {
		if n.Phase == obs.PhaseComponent {
			comps = append(comps, n)
		}
	})
	sort.SliceStable(comps, func(i, j int) bool { return comps[i].Dur() > comps[j].Dur() })
	return comps
}

// SlowestSpans returns every identified span of every recovery, sorted
// slowest-first — the trace-side input of redostats -top.
func SlowestSpans(recs []*Recovery) []*Node {
	var all []*Node
	for _, r := range recs {
		r.Walk(func(n *Node, _ int) { all = append(all, n) })
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Dur() > all[j].Dur() })
	return all
}

// RenderSummary writes one line per recovery in the trace.
func RenderSummary(w io.Writer, recs []*Recovery) {
	for _, r := range recs {
		id := r.TraceID
		if id == "" {
			id = "(untraced)"
		}
		detail := r.Detail
		if detail == "" {
			detail = "-"
		}
		fmt.Fprintf(w, "%-10s %-28s spans=%-4d events=%-5d wall=%s\n",
			id, detail, r.Spans, r.Events, time.Duration(r.End()-r.Begin()))
	}
}

// RenderCriticalPath writes the path as an indented chain with each
// span's share of the root's wall clock.
func RenderCriticalPath(w io.Writer, path []*Node) {
	if len(path) == 0 {
		fmt.Fprintln(w, "critical path: (no spans)")
		return
	}
	total := path[0].Dur()
	fmt.Fprintf(w, "critical path (%s total):\n", total)
	for i, n := range path {
		share := 100.0
		if total > 0 {
			share = 100 * float64(n.Dur()) / float64(total)
		}
		fmt.Fprintf(w, "  %s%-24s %10s  %5.1f%%\n",
			strings.Repeat("  ", i), n.Label(), n.Dur(), share)
	}
}

// RenderStragglers writes the top-K component table: label, worker,
// records, write width, duration, and share of the replay phase.
func RenderStragglers(w io.Writer, rec *Recovery, k int) {
	comps := Stragglers(rec)
	if len(comps) == 0 {
		fmt.Fprintln(w, "stragglers: (no component spans — sequential recovery?)")
		return
	}
	var replay time.Duration
	rec.Walk(func(n *Node, _ int) {
		if n.Phase == obs.PhaseReplay && n.Dur() > replay {
			replay = n.Dur()
		}
	})
	if k <= 0 || k > len(comps) {
		k = len(comps)
	}
	fmt.Fprintf(w, "stragglers (top %d of %d components):\n", k, len(comps))
	fmt.Fprintf(w, "  %-10s %6s %8s %8s %12s %9s\n", "component", "worker", "records", "writes", "dur", "of-replay")
	for _, n := range comps[:k] {
		share := 0.0
		if replay > 0 {
			share = 100 * float64(n.Dur()) / float64(replay)
		}
		fmt.Fprintf(w, "  %-10s %6d %8d %8d %12s %8.1f%%\n",
			n.Comp, n.Worker, n.Size, n.Writes, n.Dur(), share)
	}
}

// timelineRows bounds how many spans an ASCII timeline renders.
const timelineRows = 32

// RenderTimeline writes an ASCII Gantt chart of the recovery: one row
// per span in causal (depth-first) order, bars scaled to the recovery's
// wall clock. Rows beyond the bound are dropped slowest-last, with a
// note of how many were omitted — no silent truncation.
func RenderTimeline(w io.Writer, rec *Recovery, width int) {
	if width < 16 {
		width = 48
	}
	begin, end := rec.Begin(), rec.End()
	if end <= begin || len(rec.Roots) == 0 {
		fmt.Fprintln(w, "timeline: (no timed spans)")
		return
	}
	type row struct {
		n     *Node
		depth int
	}
	var rows []row
	rec.Walk(func(n *Node, depth int) { rows = append(rows, row{n, depth}) })
	omitted := 0
	if len(rows) > timelineRows {
		// Keep the slowest spans but preserve causal order among them.
		kept := append([]row(nil), rows...)
		sort.SliceStable(kept, func(i, j int) bool { return kept[i].n.Dur() > kept[j].n.Dur() })
		keep := make(map[*Node]bool, timelineRows)
		for _, r := range kept[:timelineRows] {
			keep[r.n] = true
		}
		filtered := rows[:0]
		for _, r := range rows {
			if keep[r.n] {
				filtered = append(filtered, r)
			}
		}
		omitted = len(rows) - len(filtered)
		rows = filtered
	}
	span := float64(end - begin)
	fmt.Fprintf(w, "timeline (%s wall clock, %d columns):\n", time.Duration(end-begin), width)
	for _, r := range rows {
		lo := int(float64(r.n.Begin-begin) / span * float64(width))
		hi := int(float64(r.n.End-begin) / span * float64(width))
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		if lo >= width {
			lo = width - 1
		}
		bar := strings.Repeat(" ", lo) + strings.Repeat("=", hi-lo) + strings.Repeat(" ", width-hi)
		label := strings.Repeat(" ", r.depth) + r.n.Label()
		if len(label) > 22 {
			label = label[:22]
		}
		fmt.Fprintf(w, "  %-22s |%s| %s\n", label, bar, r.n.Dur())
	}
	if omitted > 0 {
		fmt.Fprintf(w, "  (%d faster spans omitted)\n", omitted)
	}
}
