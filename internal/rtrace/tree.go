package rtrace

import (
	"fmt"
	"time"

	"redotheory/internal/obs"
)

// Node is one reconstructed span of a recovery's causal tree.
type Node struct {
	ID     uint64
	Parent uint64
	Phase  obs.Phase
	Comp   string
	Worker int
	Size   int
	Writes int
	// Begin and End are the span's boundary timestamps (ns since the
	// recording process's trace epoch).
	Begin int64
	End   int64
	Seq   uint64
	// Children are ordered by begin sequence.
	Children []*Node
}

// Dur returns the span's wall-clock extent.
func (n *Node) Dur() time.Duration { return time.Duration(n.End - n.Begin) }

// Label renders the node for tables and timelines: the phase, plus the
// component/attempt label and worker when attributed.
func (n *Node) Label() string {
	switch {
	case n.Comp != "" && n.Worker > 0:
		return fmt.Sprintf("%s %s (w%d)", n.Phase, n.Comp, n.Worker)
	case n.Comp != "":
		return fmt.Sprintf("%s %s", n.Phase, n.Comp)
	default:
		return string(n.Phase)
	}
}

// Recovery is one trace's worth of spans: a root forest reconstructed
// from one EvTraceBegin to the next.
type Recovery struct {
	// TraceID is the trace-begin event's id ("" for spans recorded
	// before any trace-begin — engine pieces traced standalone).
	TraceID string
	// Detail is the trace-begin event's description of the root.
	Detail string
	// Roots are the parentless spans, in begin order. A well-formed
	// engine trace has exactly one.
	Roots []*Node
	// Spans counts every identified span in the recovery.
	Spans int
	// Events counts every event attributed to the recovery, identified
	// spans or not.
	Events int
}

// Begin returns the earliest root begin timestamp (0 when empty).
func (r *Recovery) Begin() int64 {
	if len(r.Roots) == 0 {
		return 0
	}
	return r.Roots[0].Begin
}

// End returns the latest root end timestamp (0 when empty).
func (r *Recovery) End() int64 {
	var end int64
	for _, n := range r.Roots {
		if n.End > end {
			end = n.End
		}
	}
	return end
}

// Walk visits every node of the recovery depth-first in begin order,
// with its depth (roots at 0).
func (r *Recovery) Walk(fn func(n *Node, depth int)) {
	var visit func(n *Node, depth int)
	visit = func(n *Node, depth int) {
		fn(n, depth)
		for _, c := range n.Children {
			visit(c, depth+1)
		}
	}
	for _, n := range r.Roots {
		visit(n, 0)
	}
}

// Split partitions the event stream at trace-begin events and
// reconstructs each trace's span tree. Identified spans attach under
// their parent (or become roots); id-less span events — the engines'
// per-record micro measurements — count toward Events but carry no
// tree structure. A span left open at end of stream is an error, as is
// an end without a begin; use it after (or as part of) Check.
func Split(events []obs.Event) ([]*Recovery, error) {
	var recs []*Recovery
	var cur *Recovery
	open := make(map[uint64]*Node)
	flush := func() error {
		if len(open) != 0 {
			var witness *Node
			for _, n := range open {
				witness = n
				break
			}
			return fmt.Errorf("rtrace: trace %q ends with %d spans still open (e.g. %s id %d)",
				cur.TraceID, len(open), witness.Phase, witness.ID)
		}
		if cur != nil && cur.Events > 0 {
			recs = append(recs, cur)
		}
		return nil
	}
	for _, e := range events {
		if e.Type == obs.EvTraceBegin {
			if err := flush(); err != nil {
				return nil, err
			}
			cur = &Recovery{TraceID: e.Trace, Detail: e.Detail, Events: 1}
			continue
		}
		if cur == nil {
			cur = &Recovery{}
		}
		cur.Events++
		switch e.Type {
		case obs.EvSpanBegin:
			if e.Span == 0 {
				continue
			}
			n := &Node{
				ID: e.Span, Parent: e.Parent, Phase: e.Phase,
				Comp: e.Comp, Worker: e.Worker, Size: e.Size, Writes: e.WriteN,
				Begin: e.TS, Seq: e.Seq,
			}
			if p, ok := open[e.Parent]; ok && e.Parent != 0 {
				p.Children = append(p.Children, n)
			} else {
				cur.Roots = append(cur.Roots, n)
			}
			open[e.Span] = n
			cur.Spans++
		case obs.EvSpanEnd:
			if e.Span == 0 {
				continue
			}
			n, ok := open[e.Span]
			if !ok {
				return nil, fmt.Errorf("rtrace: span-end for id %d, which is not open (event %s)", e.Span, e)
			}
			n.End = e.TS
			if n.End < n.Begin {
				n.End = n.Begin
			}
			delete(open, e.Span)
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return recs, nil
}

// Main returns the recovery with the most spans — the one an analyzer
// should lead with (nil when the trace holds none).
func Main(recs []*Recovery) *Recovery {
	var best *Recovery
	for _, r := range recs {
		if best == nil || r.Spans > best.Spans {
			best = r
		}
	}
	return best
}
