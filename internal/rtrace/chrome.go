package rtrace

import (
	"encoding/json"
	"fmt"

	"redotheory/internal/obs"
)

// chromeEvent is one entry of the Chrome trace-event format ("X"
// complete events for spans, "i" instant events for point events),
// loadable in Perfetto and chrome://tracing. Timestamps and durations
// are microseconds; sub-microsecond spans keep their resolution via
// the fractional part.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace exports the trace as Chrome trace-event JSON: each
// recovery becomes a process (pid), each worker a thread (tid 0 is the
// coordinator), spans become complete events carrying their component
// attribution as args, and the point events of the stream — rung
// transitions, attempt outcomes, detections, WAL forces — become
// instant events.
func ChromeTrace(t *Trace) ([]byte, error) {
	recs, err := Split(t.Events)
	if err != nil {
		return nil, err
	}
	out := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for pi, rec := range recs {
		pid := pi + 1
		rec.Walk(func(n *Node, _ int) {
			args := map[string]any{"span": n.ID, "parent": n.Parent}
			if n.Comp != "" {
				args["comp"] = n.Comp
			}
			if n.Size > 0 {
				args["records"] = n.Size
			}
			if n.Writes > 0 {
				args["writes"] = n.Writes
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name:  n.Label(),
				Phase: "X",
				TS:    float64(n.Begin) / 1e3,
				Dur:   float64(n.End-n.Begin) / 1e3,
				PID:   pid,
				TID:   n.Worker,
				Args:  args,
			})
		})
	}
	// Point events: re-walk the stream attributing each event to its
	// recovery by position, skipping span machinery and the per-record
	// verdict flood (admit/skip events would swamp the viewer).
	pid := 0
	for _, e := range t.Events {
		if e.Type == obs.EvTraceBegin {
			pid++
			continue
		}
		switch e.Type {
		case obs.EvSpanBegin, obs.EvSpanEnd, obs.EvAdmit, obs.EvSkip:
			continue
		}
		name := string(e.Type)
		if e.Detail != "" {
			name = fmt.Sprintf("%s: %s", e.Type, e.Detail)
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name:  name,
			Phase: "i",
			TS:    float64(e.TS) / 1e3,
			PID:   max(pid, 1),
			Scope: "p",
		})
	}
	return json.MarshalIndent(out, "", " ")
}
