// Package rtrace is the causal recovery-trace artifact and its
// analyzer: the on-disk schema produced by tracing runs (redobench
// -trace.out, redosim -trace), well-formedness checking, span-tree
// reconstruction, critical-path and straggler analysis, ASCII
// timelines, and Chrome trace-event export for Perfetto.
//
// The event model comes from internal/obs (DESIGN.md §13): a trace
// opens with an EvTraceBegin event, spans carry ids and parent ids, and
// the parallel engine's component spans carry worker/size attribution.
// One artifact may hold several traces back to back — a campaign traces
// one recovery per method into a single recorder — and Split recovers
// them individually.
//
// The name avoids internal/trace, which holds the paper's redocheck
// crash-point traces (a different artifact entirely).
package rtrace

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"redotheory/internal/obs"
)

// SchemaV1 identifies the trace artifact format.
const SchemaV1 = "redotheory/trace/v1"

// Trace is the on-disk trace artifact: a recorded event stream plus
// provenance.
type Trace struct {
	Schema      string      `json:"schema"`
	GeneratedAt string      `json:"generated_at"`
	Source      string      `json:"source"`
	Events      []obs.Event `json:"events"`
}

// New wraps a recorded event stream into an artifact.
func New(source string, events []obs.Event) *Trace {
	return &Trace{
		Schema:      SchemaV1,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Source:      source,
		Events:      events,
	}
}

// WriteFile writes the artifact as indented JSON.
func (t *Trace) WriteFile(path string) error {
	data, err := json.MarshalIndent(t, "", " ")
	if err != nil {
		return fmt.Errorf("rtrace: encoding trace: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile reads and decodes a trace artifact. Decoding is tolerant of
// unknown fields; Check is where well-formedness is enforced.
func ReadFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("rtrace: decoding %s: %w", path, err)
	}
	return &t, nil
}

// Check validates the artifact's well-formedness: the schema tag, a
// non-empty stream, sequence numbers forming a strictly-increasing
// total order, non-decreasing timestamps, and balanced, properly
// nested spans (obs.CheckSpanNesting's forest check). It returns the
// first violation found.
func (t *Trace) Check() error {
	if t == nil {
		return fmt.Errorf("rtrace: nil trace")
	}
	if t.Schema != SchemaV1 {
		return fmt.Errorf("rtrace: schema %q, want %q", t.Schema, SchemaV1)
	}
	if len(t.Events) == 0 {
		return fmt.Errorf("rtrace: trace holds no events")
	}
	for i, e := range t.Events {
		if e.Seq == 0 {
			return fmt.Errorf("rtrace: event %d has no sequence number (%s)", i, e)
		}
		if i > 0 && e.Seq <= t.Events[i-1].Seq {
			return fmt.Errorf("rtrace: seq %d follows %d — not a strictly increasing total order", e.Seq, t.Events[i-1].Seq)
		}
		if i > 0 && e.TS != 0 && t.Events[i-1].TS != 0 && e.TS < t.Events[i-1].TS {
			return fmt.Errorf("rtrace: timestamp regressed at seq %d (%d after %d)", e.Seq, e.TS, t.Events[i-1].TS)
		}
	}
	if err := obs.CheckSpanNesting(t.Events); err != nil {
		return fmt.Errorf("rtrace: %w", err)
	}
	if _, err := Split(t.Events); err != nil {
		return err
	}
	return nil
}
