package rtrace

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"redotheory/internal/obs"
)

// span emits a begin/end pair into the synthetic stream builder.
type builder struct {
	events []obs.Event
	seq    uint64
}

func (b *builder) emit(e obs.Event) {
	b.seq++
	e.Seq = b.seq
	b.events = append(b.events, e)
}

func (b *builder) begin(id, parent uint64, phase obs.Phase, ts int64, comp string, worker, size int) {
	b.emit(obs.Event{Type: obs.EvSpanBegin, Phase: phase, Span: id, Parent: parent,
		TS: ts, Comp: comp, Worker: worker, Size: size})
}

func (b *builder) end(id uint64, phase obs.Phase, ts int64) {
	b.emit(obs.Event{Type: obs.EvSpanEnd, Phase: phase, Span: id, TS: ts})
}

// syntheticTrace builds a two-recovery stream: a parallel recovery with
// two interleaved component spans, then a second smaller recovery.
func syntheticTrace() []obs.Event {
	b := &builder{}
	b.emit(obs.Event{Type: obs.EvTraceBegin, Trace: "t1", Detail: "parallel recovery"})
	b.begin(1, 0, obs.PhaseRecover, 0, "", 0, 0)
	b.begin(2, 1, obs.PhaseDecide, 10, "", 0, 0)
	b.end(2, obs.PhaseDecide, 100)
	b.begin(3, 1, obs.PhaseReplay, 100, "", 0, 0)
	b.begin(4, 3, obs.PhaseComponent, 110, "c0", 1, 7)
	b.begin(5, 3, obs.PhaseComponent, 115, "c1", 2, 3)
	b.end(5, obs.PhaseComponent, 200)
	b.end(4, obs.PhaseComponent, 700)
	b.end(3, obs.PhaseReplay, 710)
	b.end(1, obs.PhaseRecover, 800)
	b.emit(obs.Event{Type: obs.EvTraceBegin, Trace: "t2", Detail: "sequential recovery"})
	b.begin(6, 0, obs.PhaseRecover, 900, "", 0, 0)
	b.end(6, obs.PhaseRecover, 950)
	return b.events
}

func TestCheckAcceptsWellFormed(t *testing.T) {
	tr := New("test", syntheticTrace())
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Trace)
		want string
	}{
		{"schema", func(tr *Trace) { tr.Schema = "bogus" }, "schema"},
		{"empty", func(tr *Trace) { tr.Events = nil }, "no events"},
		{"zero-seq", func(tr *Trace) { tr.Events[3].Seq = 0 }, "sequence"},
		{"seq-order", func(tr *Trace) { tr.Events[3].Seq = 2 }, "total order"},
		{"ts-regress", func(tr *Trace) { tr.Events[5].TS = 1 }, "regressed"},
		{"unbalanced", func(tr *Trace) { tr.Events = tr.Events[:len(tr.Events)-1] }, "never ended"},
	}
	for _, tc := range cases {
		tr := New("test", syntheticTrace())
		tc.mut(tr)
		err := tr.Check()
		if err == nil {
			t.Fatalf("%s: corruption not detected", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not name %q", tc.name, err, tc.want)
		}
	}
	var nilTrace *Trace
	if err := nilTrace.Check(); err == nil {
		t.Fatal("nil trace passed")
	}
}

func TestCheckRejectsDanglingEnd(t *testing.T) {
	b := &builder{}
	b.emit(obs.Event{Type: obs.EvTraceBegin, Trace: "t1"})
	b.end(9, obs.PhaseDecide, 10)
	if err := New("test", b.events).Check(); err == nil {
		t.Fatal("span-end without begin passed")
	}
}

func TestSplitReconstructsForest(t *testing.T) {
	recs, err := Split(syntheticTrace())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("split into %d recoveries, want 2", len(recs))
	}
	main := Main(recs)
	if main.TraceID != "t1" || main.Spans != 5 {
		t.Fatalf("main recovery = %s with %d spans, want t1 with 5", main.TraceID, main.Spans)
	}
	if len(main.Roots) != 1 || main.Roots[0].Phase != obs.PhaseRecover {
		t.Fatalf("main roots = %+v, want one recover root", main.Roots)
	}
	replay := main.Roots[0].Children[1]
	if replay.Phase != obs.PhaseReplay || len(replay.Children) != 2 {
		t.Fatalf("replay node = %+v, want 2 component children", replay)
	}
	c0 := replay.Children[0]
	if c0.Comp != "c0" || c0.Worker != 1 || c0.Size != 7 || c0.Dur() != 590 {
		t.Fatalf("component c0 = %+v", c0)
	}
	if recs[1].TraceID != "t2" || recs[1].Spans != 1 {
		t.Fatalf("second recovery = %+v", recs[1])
	}
}

func TestSplitIgnoresIDlessSpans(t *testing.T) {
	b := &builder{}
	b.emit(obs.Event{Type: obs.EvTraceBegin, Trace: "t1"})
	b.begin(1, 0, obs.PhaseRecover, 0, "", 0, 0)
	// The engines' per-record micro measurements carry no span id.
	b.emit(obs.Event{Type: obs.EvSpanBegin, Phase: obs.PhaseAnalysis})
	b.emit(obs.Event{Type: obs.EvSpanEnd, Phase: obs.PhaseAnalysis})
	b.end(1, obs.PhaseRecover, 50)
	recs, err := Split(b.events)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Spans != 1 || recs[0].Events != 5 {
		t.Fatalf("spans=%d events=%d, want 1 identified span over 5 events", recs[0].Spans, recs[0].Events)
	}
}

func TestCriticalPathPicksLatestChild(t *testing.T) {
	recs, err := Split(syntheticTrace())
	if err != nil {
		t.Fatal(err)
	}
	path := CriticalPath(Main(recs).Roots[0])
	got := make([]string, len(path))
	for i, n := range path {
		got[i] = n.Label()
	}
	want := []string{"recover", "replay", "component c0 (w1)"}
	if len(got) != len(want) {
		t.Fatalf("critical path %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("critical path %v, want %v", got, want)
		}
	}
	if CriticalPath(nil) != nil {
		t.Fatal("nil root produced a path")
	}
}

func TestStragglersSortSlowestFirst(t *testing.T) {
	recs, err := Split(syntheticTrace())
	if err != nil {
		t.Fatal(err)
	}
	comps := Stragglers(Main(recs))
	if len(comps) != 2 {
		t.Fatalf("%d stragglers, want 2", len(comps))
	}
	if comps[0].Comp != "c0" || comps[1].Comp != "c1" {
		t.Fatalf("straggler order %s, %s — want c0 (slowest) first", comps[0].Comp, comps[1].Comp)
	}
}

func TestSlowestSpansSpanRecoveries(t *testing.T) {
	recs, err := Split(syntheticTrace())
	if err != nil {
		t.Fatal(err)
	}
	spans := SlowestSpans(recs)
	if len(spans) != 6 {
		t.Fatalf("%d spans, want 6 across both recoveries", len(spans))
	}
	if spans[0].Phase != obs.PhaseRecover || spans[0].Dur() != 800 {
		t.Fatalf("slowest span = %s %v", spans[0].Label(), spans[0].Dur())
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	recs, err := Split(syntheticTrace())
	if err != nil {
		t.Fatal(err)
	}
	main := Main(recs)
	var buf bytes.Buffer
	RenderSummary(&buf, recs)
	RenderCriticalPath(&buf, CriticalPath(main.Roots[0]))
	RenderStragglers(&buf, main, 8)
	RenderTimeline(&buf, main, 48)
	out := buf.String()
	for _, want := range []string{"t1", "t2", "critical path", "stragglers", "c0", "timeline"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered output lacks %q:\n%s", want, out)
		}
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	tr := New("test", syntheticTrace())
	data, err := ChromeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	var complete int
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			complete++
		}
	}
	if complete != 6 {
		t.Fatalf("%d complete events, want 6 (one per span)", complete)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	tr := New("round-trip", syntheticTrace())
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Check(); err != nil {
		t.Fatal(err)
	}
	if got.Source != "round-trip" || len(got.Events) != len(tr.Events) {
		t.Fatalf("round trip lost data: source=%q events=%d", got.Source, len(got.Events))
	}
}
