package fault

import "testing"

func TestSumFraming(t *testing.T) {
	if Sum("ab", "c") == Sum("a", "bc") {
		t.Fatal("length framing missing: (ab,c) collides with (a,bc)")
	}
	if Sum("x") != Sum("x") {
		t.Fatal("Sum is not deterministic")
	}
	if Sum() == Sum("") {
		t.Fatal("empty part should differ from no parts")
	}
}

func TestInjectorDeterminism(t *testing.T) {
	a, b := NewInjector(7, LostWrite), NewInjector(7, LostWrite)
	pages := []string{"p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7"}
	var lostA, lostB []string
	for _, p := range pages {
		if a.LoseWrite(p) {
			lostA = append(lostA, p)
		}
		if b.LoseWrite(p) {
			lostB = append(lostB, p)
		}
	}
	if len(lostA) == 0 {
		t.Fatal("lost-write never fired over 8 writes")
	}
	if len(lostA) != len(lostB) || lostA[0] != lostB[0] {
		t.Fatalf("same seed diverged: %v vs %v", lostA, lostB)
	}
	if !a.HasFired() || a.Fired()[0].Kind != LostWrite {
		t.Fatalf("fired events not recorded: %v", a.Fired())
	}
}

func TestInjectorDeadSector(t *testing.T) {
	in := NewInjector(1, LostWrite)
	var dead string
	for i := 0; i < 20; i++ {
		if in.LoseWrite("pg") {
			dead = "pg"
			break
		}
	}
	if dead == "" {
		t.Fatal("repeated writes to one page never nominated it")
	}
	if !in.LoseWrite("pg") {
		t.Fatal("subsequent writes to the dead page must also be lost")
	}
	if in.LoseWrite("other") {
		t.Fatal("writes to other pages must not be lost")
	}
	if len(in.Fired()) != 1 {
		t.Fatalf("dead sector fired %d events, want 1", len(in.Fired()))
	}
}

func TestTearGroupOnce(t *testing.T) {
	in := NewInjector(3, TornGroup)
	if _, ok := in.TearGroup(1); ok {
		t.Fatal("single-page groups must not tear")
	}
	keep, ok := in.TearGroup(5)
	if !ok {
		t.Fatal("armed torn-group did not fire on a 5-page group")
	}
	if keep < 0 || keep >= 5 {
		t.Fatalf("keep=%d out of range [0,5)", keep)
	}
	if _, ok := in.TearGroup(5); ok {
		t.Fatal("torn-group fired twice")
	}
}

func TestUnarmedAndNil(t *testing.T) {
	in := NewInjector(1, PageBitRot)
	if in.LoseWrite("p") {
		t.Fatal("unarmed LoseWrite fired")
	}
	if _, ok := in.TearGroup(4); ok {
		t.Fatal("unarmed TearGroup fired")
	}
	var none *Injector
	if none.Armed(PageBitRot) || none.HasFired() {
		t.Fatal("nil injector must be inert")
	}
	if len(Kinds()) != 6 {
		t.Fatalf("want 6 fault kinds, got %d", len(Kinds()))
	}
}
