// Package fault is the media-fault model: a deterministic, seeded
// injector for the ways stable storage lies after a crash, and the
// checksum primitive the storage and log layers use to catch it lying.
//
// The paper's Recovery Invariant (Section 4, Corollary 4) covers the
// clean-crash regime: volatile state is lost, stable state is intact.
// Real redo systems must additionally survive media faults — torn
// multi-page writes, page bit-rot, lost (stale) page writes, torn or
// rotted log tails, and crashes in the middle of recovery itself. This
// package supplies the fault vocabulary; internal/storage and
// internal/wal carry the injection hooks and the integrity metadata
// (per-page and per-record checksums plus a chained tail anchor) that
// turn every injected fault into a detection instead of silence; and
// internal/method's degraded recovery quarantines, truncates, and
// re-runs redo from the last trustworthy base.
//
// The package is intentionally leaf-level (no internal imports) so both
// substrate layers can depend on it without cycles.
package fault

import (
	"fmt"
	"math/rand"
)

// Kind names one media-fault class.
type Kind string

const (
	// None arms nothing; the zero Injector is inert.
	None Kind = ""
	// TornGroup tears a multi-page atomic write group, applying only a
	// prefix of its pages (a failed shadow-pointer swing or doublewrite).
	TornGroup Kind = "torn-group"
	// PageBitRot silently flips bytes of one stable page after the
	// crash, leaving its checksum stale.
	PageBitRot Kind = "page-bitrot"
	// LostWrite makes the disk silently drop every write to one page
	// (a dead sector): the store acknowledges the write, but at crash
	// time the page still holds its previous, checksum-valid contents.
	LostWrite Kind = "lost-write"
	// LogTornTail tears the stable log's tail: the last record(s) are
	// lost or left unreadable mid-record.
	LogTornTail Kind = "log-torn-tail"
	// LogBitRot corrupts one stable log record's payload, possibly far
	// from the tail, sacrificing the valid suffix behind it.
	LogBitRot Kind = "log-bitrot"
	// CrashInRecovery crashes the system again partway through degraded
	// recovery's repair phase; the rerun must converge.
	CrashInRecovery Kind = "crash-in-recovery"
)

// Kinds returns every injectable fault kind, in campaign order.
func Kinds() []Kind {
	return []Kind{TornGroup, PageBitRot, LostWrite, LogTornTail, LogBitRot, CrashInRecovery}
}

// Sum is the integrity checksum used for pages and log records: FNV-1a
// over the concatenated parts with length framing (so ("ab","c") and
// ("a","bc") differ).
func Sum(parts ...string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, p := range parts {
		h ^= uint64(len(p))
		h *= prime64
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= prime64
		}
	}
	return h
}

// Event records one fault that actually fired.
type Event struct {
	Kind   Kind
	Detail string
}

func (e Event) String() string { return fmt.Sprintf("%s: %s", e.Kind, e.Detail) }

// Detection records one integrity failure found by validation or
// degraded recovery — the proof that an injected fault did not pass
// silently. Code is a stable machine-readable tag ("corrupt-page",
// "corrupt-record", "torn-tail", "torn-group", "stale-page",
// "orphan-page", "partial-group").
type Detection struct {
	Code   string
	Detail string
}

func (d Detection) String() string { return fmt.Sprintf("[%s] %s", d.Code, d.Detail) }

// Plan describes the faults for one simulated run: a seed and a kind.
// Plans are deliberately tiny — campaigns sweep the product of kinds,
// crash points, and seeds, so one plan arms one fault.
type Plan struct {
	Seed int64
	Kind Kind
}

// New builds the plan's injector.
func (p Plan) New() *Injector { return NewInjector(p.Seed, p.Kind) }

// Injector carries one armed fault plan through a run. The substrate
// hooks (storage writes, group writes) consult it at decision points;
// crash-time decay (bit-rot, log tears) is driven by the campaign via
// Rng so every victim choice is seeded. A nil Injector is never
// consulted; callers hold it optionally.
type Injector struct {
	kind Kind
	rng  *rand.Rand
	// fired lists the faults that actually happened.
	fired []Event
	// write-time state for LostWrite: the k-th write after arming picks
	// the dead page; every later write to it is also lost.
	writeCount int
	loseAt     int
	deadPage   string
	// tornDone ensures TornGroup tears exactly one group.
	tornDone bool
}

// NewInjector returns an injector arming the given kind, with all
// victim choices driven by the seed.
func NewInjector(seed int64, kind Kind) *Injector {
	rng := rand.New(rand.NewSource(seed))
	return &Injector{kind: kind, rng: rng, loseAt: rng.Intn(6)}
}

// Kind returns the armed fault kind.
func (in *Injector) Kind() Kind { return in.kind }

// Armed reports whether the given kind is armed (fired or not).
func (in *Injector) Armed(k Kind) bool { return in != nil && in.kind == k && k != None }

// Rng exposes the injector's seeded source for victim selection by the
// crash-time realization code.
func (in *Injector) Rng() *rand.Rand { return in.rng }

// Fire records that a fault happened.
func (in *Injector) Fire(k Kind, detail string) {
	in.fired = append(in.fired, Event{Kind: k, Detail: detail})
}

// Fired returns the events recorded so far.
func (in *Injector) Fired() []Event { return in.fired }

// HasFired reports whether any fault has actually happened.
func (in *Injector) HasFired() bool { return in != nil && len(in.fired) > 0 }

// LoseWrite is the storage write hook: it reports whether the write to
// the given page should be silently lost at crash time. The first
// decision point at or past the seeded offset nominates the dead page;
// all subsequent writes to that page are lost too (dead-sector
// semantics), so the stale version is what the crash reveals no matter
// how often the page is rewritten.
func (in *Injector) LoseWrite(page string) bool {
	if !in.Armed(LostWrite) {
		return false
	}
	if in.deadPage == "" {
		if in.writeCount < in.loseAt {
			in.writeCount++
			return false
		}
		in.deadPage = page
		in.Fire(LostWrite, fmt.Sprintf("writes to page %q silently lost", page))
	}
	return page == in.deadPage
}

// TearGroup is the group-write hook: for an armed TornGroup fault it
// returns how many pages of a size-n group to apply before tearing, and
// true. It fires at most once. Groups of one page cannot tear (single
// page writes are atomic by the disk model).
func (in *Injector) TearGroup(n int) (int, bool) {
	if !in.Armed(TornGroup) || in.tornDone || n < 2 {
		return 0, false
	}
	in.tornDone = true
	keep := in.rng.Intn(n)
	in.Fire(TornGroup, fmt.Sprintf("write group of %d pages torn after %d", n, keep))
	return keep, true
}
