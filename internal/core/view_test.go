package core

import (
	"fmt"
	"testing"

	"redotheory/internal/model"
	"redotheory/internal/obs"
)

// viewFixtureLog builds a small log mixing blind writes, read-modify-
// write chains, and multi-variable operations, with wire sizes attached
// the way the log manager does.
func viewFixtureLog() *Log {
	l := NewLog()
	mk := func(id model.OpID, reads, writes []model.Var) {
		r := l.Append(model.ReadWrite(id, fmt.Sprintf("op%d", id), reads, writes))
		r.SetSizeBytes(int(id) * 10)
	}
	mk(1, nil, []model.Var{"x"})
	mk(2, []model.Var{"x"}, []model.Var{"x", "y"})
	mk(3, []model.Var{"y", "x"}, []model.Var{"z"})
	mk(4, nil, []model.Var{"w", "y"})
	mk(5, []model.Var{"z", "w"}, []model.Var{"x"})
	return l
}

// TestLogViewAlignment: every record view's Reads and Writes are the
// record's Op.Reads()/Op.Writes() interned index-for-index, and Size is
// the record's SizeBytes — the invariant the dense replay engines rely
// on when they pair view ids with the operation's variable slices.
func TestLogViewAlignment(t *testing.T) {
	l := viewFixtureLog()
	lv := NewLogView(l)
	if len(lv.Views) != l.Len() {
		t.Fatalf("view has %d records, log has %d", len(lv.Views), l.Len())
	}
	for i, r := range l.Records() {
		v := &lv.Views[i]
		if v.Rec != r {
			t.Fatalf("view %d points at record %v, want %v", i, v.Rec, r)
		}
		reads, writes := r.Op.Reads(), r.Op.Writes()
		if len(v.Reads) != len(reads) || len(v.Writes) != len(writes) {
			t.Fatalf("view %d: %d reads / %d writes, op has %d / %d",
				i, len(v.Reads), len(v.Writes), len(reads), len(writes))
		}
		for k, id := range v.Reads {
			if got := lv.In.Var(id); got != reads[k] {
				t.Errorf("view %d read %d: id %d resolves to %q, op reads %q", i, k, id, got, reads[k])
			}
		}
		for k, id := range v.Writes {
			if got := lv.In.Var(id); got != writes[k] {
				t.Errorf("view %d write %d: id %d resolves to %q, op writes %q", i, k, id, got, writes[k])
			}
		}
		if v.Size != r.SizeBytes() {
			t.Errorf("view %d: Size = %d, record SizeBytes = %d", i, v.Size, r.SizeBytes())
		}
	}
}

// TestViewCacheReuse: the cache hands back the identical *LogView for
// an unchanged record sequence (the pointer-identity key GraphCache
// uses) and a fresh one once the sequence differs.
func TestViewCacheReuse(t *testing.T) {
	c := NewViewCache(4)
	l := viewFixtureLog()
	v1 := c.ViewOf(l)
	v2 := c.ViewOf(l)
	if v1 != v2 {
		t.Fatal("cache rebuilt the view for an unchanged log")
	}
	// A prefix shares record pointers but differs in length — it must
	// get its own view.
	p := l.Prefix(3)
	vp := c.ViewOf(p)
	if vp == v1 {
		t.Fatal("cache returned the full log's view for a prefix")
	}
	if len(vp.Views) != 3 {
		t.Fatalf("prefix view has %d records, want 3", len(vp.Views))
	}
	// Appending changes the sequence; the view must be rebuilt.
	l.Append(model.ReadWrite(6, "op6", nil, []model.Var{"q"}))
	v3 := c.ViewOf(l)
	if v3 == v1 {
		t.Fatal("cache returned the stale view after an append")
	}
	if len(v3.Views) != 6 {
		t.Fatalf("rebuilt view has %d records, want 6", len(v3.Views))
	}
}

// TestRecordSizeBytes: the append-time cache is authoritative and
// parse-free; decoded legacy records (labels only, never sealed) fall
// back to parsing the "bytes" label per call; absent both, zero.
func TestRecordSizeBytes(t *testing.T) {
	sealed := &Record{Labels: map[string]string{"bytes": "999"}}
	sealed.SetSizeBytes(42)
	if got := sealed.SizeBytes(); got != 42 {
		t.Errorf("sealed record: SizeBytes = %d, want the cached 42 over the label's 999", got)
	}

	legacy := &Record{Labels: map[string]string{"bytes": "17"}}
	if got := legacy.SizeBytes(); got != 17 {
		t.Errorf("legacy record: SizeBytes = %d, want 17 parsed from the label", got)
	}
	// Parsing is per-call, never cached: a label rewrite is visible.
	legacy.Labels["bytes"] = "23"
	if got := legacy.SizeBytes(); got != 23 {
		t.Errorf("legacy record after label rewrite: SizeBytes = %d, want 23", got)
	}

	bare := &Record{}
	if got := bare.SizeBytes(); got != 0 {
		t.Errorf("bare record: SizeBytes = %d, want 0", got)
	}
	garbled := &Record{Labels: map[string]string{"bytes": "not-a-number"}}
	if got := garbled.SizeBytes(); got != 0 {
		t.Errorf("garbled label: SizeBytes = %d, want 0", got)
	}

	clamped := &Record{}
	clamped.SetSizeBytes(-5)
	if got := clamped.SizeBytes(); got != 0 {
		t.Errorf("negative size: SizeBytes = %d, want clamped 0", got)
	}
}

// TestViewCacheCountersOnRecorder: the observed lookup surfaces cache
// effectiveness on the recorder — one miss on first sight of a prefix,
// hits on every reuse — under the keys redostats renders.
func TestViewCacheCountersOnRecorder(t *testing.T) {
	l := viewFixtureLog()
	c := NewViewCache(4)
	rec := obs.New()
	first := c.ViewOfObserved(l, rec)
	if got := rec.CounterValue(obs.MViewMisses); got != 1 {
		t.Fatalf("view misses = %d after first lookup, want 1", got)
	}
	for i := 0; i < 3; i++ {
		if c.ViewOfObserved(l, rec) != first {
			t.Fatal("cache returned a different view for the same prefix")
		}
	}
	if got := rec.CounterValue(obs.MViewHits); got != 3 {
		t.Fatalf("view hits = %d after three reuses, want 3", got)
	}
	// A nil recorder is the disabled path: no panic, same view.
	if c.ViewOfObserved(l, nil) != first {
		t.Fatal("nil-recorder lookup returned a different view")
	}
}
