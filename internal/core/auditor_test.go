package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"redotheory/internal/model"
)

func TestAuditorScenario2Live(t *testing.T) {
	// Drive Scenario 2 through the auditor: log B then A, install A's
	// page first (legal), audit at each step.
	a := NewAuditor(model.NewState())
	opB := model.AssignConst(1, "y", model.IntVal(2))
	opA := model.CopyPlus(2, "x", "y", 1)
	if _, err := a.Logged(opB); err != nil {
		t.Fatal(err)
	}
	lsnA, err := a.Logged(opA)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing installed: the empty stable state must be explainable.
	if rep := a.Audit(model.NewState()); !rep.OK {
		t.Fatalf("empty install rejected: %s", rep.Summary())
	}
	// Install A's page (x=3) before B's: drops only a WR edge.
	stable := model.StateOf(map[model.Var]model.Value{"x": model.IntVal(3)})
	a.PageInstalled("x", lsnA)
	rep := a.Audit(stable)
	if !rep.OK {
		t.Fatalf("WR-violating install rejected: %s", rep.Summary())
	}
	if len(rep.Installed) != 1 || !rep.Installed.Has(2) {
		t.Errorf("installed = %v, want {A}", rep.Installed)
	}
}

func TestAuditorCatchesScenario1Live(t *testing.T) {
	// Scenario 1: A reads y then B blind-writes y; installing B's page
	// while A is uninstalled crosses the RW edge and must be flagged.
	a := NewAuditor(model.NewState())
	opA := model.CopyPlus(1, "x", "y", 1)
	opB := model.AssignConst(2, "y", model.IntVal(2))
	if _, err := a.Logged(opA); err != nil {
		t.Fatal(err)
	}
	lsnB, err := a.Logged(opB)
	if err != nil {
		t.Fatal(err)
	}
	a.PageInstalled("y", lsnB)
	stable := model.StateOf(map[model.Var]model.Value{"y": model.IntVal(2)})
	rep := a.Audit(stable)
	if rep.OK {
		t.Fatal("auditor accepted the Scenario 1 install order")
	}
	if rep.Violations[0].Kind != NotPrefix {
		t.Errorf("kind = %v", rep.Violations[0].Kind)
	}
}

func TestAuditorCatchesCorruptExposedPage(t *testing.T) {
	a := NewAuditor(model.NewState())
	op := model.AssignConst(1, "p", model.IntVal(9))
	lsn, err := a.Logged(op)
	if err != nil {
		t.Fatal(err)
	}
	a.PageInstalled("p", lsn)
	// The stable state claims a different value than the operation wrote.
	rep := a.Audit(model.StateOf(map[model.Var]model.Value{"p": model.IntVal(1)}))
	if rep.OK {
		t.Fatal("corrupt installed page accepted")
	}
	if rep.Violations[0].Kind != ExposedMismatch {
		t.Errorf("kind = %v", rep.Violations[0].Kind)
	}
}

func TestAuditorMatchesOfflineChecker(t *testing.T) {
	// Differential test: the online auditor and the offline checker must
	// agree on every crash state of a random page-LSN execution.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pages := []model.Var{"p0", "p1", "p2", "p3"}
		s0 := model.NewState()
		for i, p := range pages {
			s0.SetInt(p, int64(100+i))
		}
		aud := NewAuditor(s0)
		// Simulated stable state: pages get installed at random times.
		stable := s0.Clone()
		for i := 1; i <= 15; i++ {
			p := pages[rng.Intn(len(pages))]
			op := model.ReadWrite(model.OpID(i), "u", []model.Var{p}, []model.Var{p})
			lsn, err := aud.Logged(op)
			if err != nil {
				return false
			}
			if rng.Float64() < 0.4 {
				// Install this page's current version.
				v, _ := aud.ledger.WriteValue(op.ID(), p)
				stable.Set(p, v)
				aud.PageInstalled(p, lsn)
			}
		}
		online := aud.Audit(stable)
		offline, err := NewChecker(aud.Log(), s0)
		if err != nil {
			return false
		}
		rep := offline.CheckInstalled(stable, online.Installed)
		if online.OK != rep.OK {
			return false
		}
		// And both must be satisfied here: installing whole single-page
		// ops keeps the page-LSN invariant by construction.
		return online.OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestAuditorInstalledSetDerivation(t *testing.T) {
	a := NewAuditor(model.NewState())
	op1 := model.AssignConst(1, "p", model.IntVal(1))
	op2 := model.AssignConst(2, "p", model.IntVal(2))
	l1, _ := a.Logged(op1)
	l2, _ := a.Logged(op2)
	if s := a.InstalledSet(); len(s) != 0 {
		t.Errorf("installed = %v, want empty", s)
	}
	a.PageInstalled("p", l1)
	if s := a.InstalledSet(); len(s) != 1 || !s.Has(1) {
		t.Errorf("installed = %v, want {1}", s)
	}
	a.PageInstalled("p", l2)
	if s := a.InstalledSet(); len(s) != 2 {
		t.Errorf("installed = %v, want both", s)
	}
	// LSNs never regress.
	a.PageInstalled("p", l1)
	if s := a.InstalledSet(); len(s) != 2 {
		t.Error("stale PageInstalled regressed the LSN")
	}
	if !a.FinalState().Equal(model.StateOf(map[model.Var]model.Value{"p": model.IntVal(2)})) {
		t.Error("FinalState wrong")
	}
	if a.Audits != 0 {
		t.Error("audit counter incremented without audits")
	}
}
