package core

import (
	"sync"

	"redotheory/internal/dense"
	"redotheory/internal/obs"
)

// RecordView is the flat, interned projection of one log record: the
// operation's read and write sets as dense variable ids, aligned
// index-for-index with Rec.Op.Reads() and Rec.Op.Writes(), plus the
// record's cached wire size. Views are what the dense replay engines
// iterate instead of re-hashing variable names per record.
type RecordView struct {
	Rec *Record
	// Reads and Writes are arena-backed slices shared by the whole
	// LogView; callers must not modify them.
	Reads  []uint32
	Writes []uint32
	// Size is Rec.SizeBytes, precomputed once at view-build time.
	Size int
}

// LogView is the dense projection of a log: one interner covering
// every variable any logged operation touches, and one RecordView per
// record, aligned with log.Records(). A LogView is immutable after
// construction and safe for concurrent readers; ids are only
// meaningful relative to In.
type LogView struct {
	In    *dense.Interner
	Views []RecordView
}

// NewLogView builds the dense projection of the log: a single pass
// over the records interns every read/write variable (this is where
// strings stop) and lays the id slices out in one shared arena.
func NewLogView(log *Log) *LogView {
	recs := log.Records()
	total := 0
	for _, r := range recs {
		total += len(r.Op.Reads()) + len(r.Op.Writes())
	}
	arena := make([]uint32, 0, total)
	in := dense.NewInterner()
	lv := &LogView{In: in, Views: make([]RecordView, len(recs))}
	for i, r := range recs {
		v := &lv.Views[i]
		v.Rec = r
		v.Size = r.SizeBytes()
		start := len(arena)
		for _, x := range r.Op.Reads() {
			arena = append(arena, in.Intern(x))
		}
		v.Reads = arena[start:len(arena):len(arena)]
		start = len(arena)
		for _, x := range r.Op.Writes() {
			arena = append(arena, in.Intern(x))
		}
		v.Writes = arena[start:len(arena):len(arena)]
	}
	return lv
}

// ViewCache memoizes LogView construction the way GraphCache memoizes
// graph construction, and under the same key: (first record, last
// record, length) by pointer identity. A view is a pure function of
// the record sequence, records are shared by every derived log
// (Prefix, StableLog projections), and recovery re-examines the same
// stable prefix many times — once per bench iteration, once per
// oracle leg — so the interner and id slices are built once per
// distinct prefix instead of once per recovery.
type ViewCache struct {
	mu      sync.Mutex
	entries map[graphKey]*LogView
	fifo    []graphKey
	cap     int
	// Hits and Misses count lookups, for tests and tuning.
	Hits, Misses int
}

// NewViewCache returns a cache holding at most capacity log prefixes
// (FIFO eviction; capacity < 1 means 1).
func NewViewCache(capacity int) *ViewCache {
	if capacity < 1 {
		capacity = 1
	}
	return &ViewCache{entries: make(map[graphKey]*LogView), cap: capacity}
}

// DefaultViews is the process-wide cache used by the dense recovery
// engines.
var DefaultViews = NewViewCache(128)

// ViewOf returns the (possibly cached) dense view of the log's record
// sequence, building and caching it on first sight. Callers must
// treat the view as immutable.
func (c *ViewCache) ViewOf(log *Log) *LogView {
	lv, _ := c.viewOf(log)
	return lv
}

// ViewOfObserved is ViewOf plus cache-effectiveness telemetry: it
// counts the lookup as a hit or miss on the recorder (MViewHits /
// MViewMisses), so campaign reports can show how often the dense
// projection was reused versus rebuilt.
func (c *ViewCache) ViewOfObserved(log *Log, rec *obs.Recorder) *LogView {
	lv, hit := c.viewOf(log)
	if hit {
		rec.Inc(obs.MViewHits)
	} else {
		rec.Inc(obs.MViewMisses)
	}
	return lv
}

// viewOf reports whether the lookup hit alongside the view.
func (c *ViewCache) viewOf(log *Log) (*LogView, bool) {
	key := keyOf(log)
	c.mu.Lock()
	if lv, ok := c.entries[key]; ok {
		c.Hits++
		c.mu.Unlock()
		return lv, true
	}
	c.Misses++
	c.mu.Unlock()

	// Build outside the lock, as GraphCache does: a rare duplicate
	// build beats serializing every worker on construction.
	lv := NewLogView(log)

	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		return e, false
	}
	for len(c.fifo) >= c.cap {
		evict := c.fifo[0]
		c.fifo = c.fifo[1:]
		delete(c.entries, evict)
	}
	c.entries[key] = lv
	c.fifo = append(c.fifo, key)
	return lv, false
}

// Len returns the number of cached prefixes.
func (c *ViewCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
