// Package core implements Section 4 of the paper: the abstract log model,
// checkpoints, the analysis phase, the redo recovery procedure of
// Figure 6, and the Recovery Invariant together with a checker that audits
// it. The invariant — "the set operations(log) − redo_set induces a prefix
// of the installation graph that explains the state" — is the contract
// between normal operation and recovery; every concrete method in
// internal/method maintains it, and the checker in this package verifies
// that they do.
package core

import (
	"fmt"
	"sort"
	"strconv"

	"redotheory/internal/conflict"
	"redotheory/internal/graph"
	"redotheory/internal/model"
)

// LSN is a log sequence number: the position of a record in the log.
// LSNs increase monotonically with each new record.
type LSN uint64

// Record is a log record: an operation plus optional labels attached by
// the recovery method (Section 4.1 allows records to carry "additional
// information about this operation and its invocation").
type Record struct {
	LSN    LSN
	Op     *model.Op
	Labels map[string]string
	// size caches the simulated wire size, sealed by SetSizeBytes at
	// append/label time so SizeBytes never re-parses the "bytes" label
	// on the hot path.
	size  int
	sized bool
}

// SetSizeBytes caches the record's simulated wire size. The log
// manager calls it when it attaches the "bytes" label at append time;
// the label stays authoritative for decoded legacy records that never
// pass through SetSizeBytes.
func (r *Record) SetSizeBytes(n int) {
	if n < 0 {
		n = 0
	}
	r.size, r.sized = n, true
}

// SizeBytes returns the simulated wire size recorded by the log
// manager, or 0 when absent. The cached size set at append time is
// preferred; decoded legacy records fall back to parsing the "bytes"
// label per call — without caching the result, so concurrently read
// records stay race-free.
func (r *Record) SizeBytes() int {
	if r.sized {
		return r.size
	}
	n, err := strconv.Atoi(r.Labels["bytes"])
	if err != nil {
		return 0
	}
	return n
}

// Log models the paper's log: a sequence of records, one per logged
// operation, whose order is consistent with the conflict order. In
// practice a log is linear (invocation order); Lemma 1 lets the theory
// treat it as any DAG consistent with the conflict graph, and
// ValidateAgainst checks that consistency.
type Log struct {
	records []*Record
	byOp    map[model.OpID]*Record
	nextLSN LSN
}

// NewLog returns an empty log whose first record will get LSN 1.
func NewLog() *Log {
	return &Log{byOp: make(map[model.OpID]*Record), nextLSN: 1}
}

// Append adds a record for the operation and returns it. Each operation
// may be logged once.
func (l *Log) Append(op *model.Op) *Record {
	if _, dup := l.byOp[op.ID()]; dup {
		panic(fmt.Sprintf("core: operation %s logged twice", op))
	}
	r := &Record{LSN: l.nextLSN, Op: op}
	l.nextLSN++
	l.records = append(l.records, r)
	l.byOp[op.ID()] = r
	return r
}

// Len returns the number of records.
func (l *Log) Len() int { return len(l.records) }

// NextLSN returns the LSN the next appended record will receive.
func (l *Log) NextLSN() LSN { return l.nextLSN }

// Records returns the records in LSN order. The slice is shared; callers
// must not modify it.
func (l *Log) Records() []*Record { return l.records }

// MaxLSN returns the LSN of the last record present, or 0 when the log
// holds no records (empty or fully truncated).
func (l *Log) MaxLSN() LSN {
	if len(l.records) == 0 {
		return 0
	}
	return l.records[len(l.records)-1].LSN
}

// RecordOf returns the record logging the operation, or nil.
func (l *Log) RecordOf(id model.OpID) *Record { return l.byOp[id] }

// RecordOfLSN returns the record at the given LSN, or nil when absent.
func (l *Log) RecordOfLSN(lsn LSN) *Record {
	i := sort.Search(len(l.records), func(i int) bool { return l.records[i].LSN >= lsn })
	if i < len(l.records) && l.records[i].LSN == lsn {
		return l.records[i]
	}
	return nil
}

// Operations returns the paper's operations(log): the set of operations
// labelling log records.
func (l *Log) Operations() graph.Set[model.OpID] {
	out := graph.NewSet[model.OpID]()
	for id := range l.byOp {
		out.Add(id)
	}
	return out
}

// Ops returns the logged operations in LSN order.
func (l *Log) Ops() []*model.Op {
	out := make([]*model.Op, len(l.records))
	for i, r := range l.records {
		out[i] = r.Op
	}
	return out
}

// Prefix returns a new Log containing the records with LSN ≤ upTo,
// preserving LSNs. It models the stable portion of the log after a
// crash; the returned log continues numbering from the cut, so LSNs are
// never reused even when the surviving portion is empty.
func (l *Log) Prefix(upTo LSN) *Log {
	// Presized for the common whole-log cut: recovery re-projects the
	// stable log often, and incremental map/slice growth is pure
	// overhead.
	p := &Log{
		records: make([]*Record, 0, len(l.records)),
		byOp:    make(map[model.OpID]*Record, len(l.records)),
		nextLSN: 1,
	}
	for _, r := range l.records {
		if r.LSN > upTo {
			break
		}
		p.records = append(p.records, r)
		p.byOp[r.Op.ID()] = r
	}
	p.nextLSN = upTo + 1
	if l.nextLSN < p.nextLSN {
		p.nextLSN = l.nextLSN
	}
	if p.nextLSN < 1 {
		p.nextLSN = 1
	}
	return p
}

// TruncateBefore drops the records with LSN < before, preserving the
// LSNs of the rest, and returns how many were dropped. Checkpoints use
// this to bound the log: the dropped operations are installed, and the
// caller must fold their effects into its recovery base state first.
func (l *Log) TruncateBefore(before LSN) int {
	cut := 0
	for cut < len(l.records) && l.records[cut].LSN < before {
		delete(l.byOp, l.records[cut].Op.ID())
		cut++
	}
	l.records = l.records[cut:]
	return cut
}

// ConflictGraph builds the conflict graph generated by the logged
// operations in log order. By Lemma 1 the log order — any order
// consistent with the conflict order — regenerates the execution's
// conflict graph restricted to the logged operations.
func (l *Log) ConflictGraph() *conflict.Graph {
	g := conflict.New()
	for _, r := range l.records {
		g.Append(r.Op)
	}
	return g
}

// ValidateAgainst checks the two log properties of Section 4.1 against a
// conflict graph: the logged operations are exactly the graph's
// operations, and whenever the conflict graph orders two operations the
// log orders them the same way.
func (l *Log) ValidateAgainst(cg *conflict.Graph) error {
	if len(l.byOp) != cg.NumOps() {
		return fmt.Errorf("core: log has %d operations, conflict graph has %d", len(l.byOp), cg.NumOps())
	}
	pos := make(map[model.OpID]int, len(l.records))
	for i, r := range l.records {
		if !cg.HasOp(r.Op.ID()) {
			return fmt.Errorf("core: logged operation %s is not in the conflict graph", r.Op)
		}
		pos[r.Op.ID()] = i
	}
	dag := cg.DAG()
	for _, u := range dag.Nodes() {
		for _, v := range dag.Succs(u) {
			if pos[u] >= pos[v] {
				return fmt.Errorf("core: log orders %d after %d, violating the conflict edge %d→%d", u, v, u, v)
			}
		}
	}
	return nil
}
