package core

import (
	"testing"

	"redotheory/internal/graph"
	"redotheory/internal/model"
)

// decideFixture builds a small log plus a state-blind redo test with a
// recording analysis function, so DecideRedo can be compared against
// Recover call for call.
func decideFixture() (*model.State, *Log, graph.Set[model.OpID], RedoTest, AnalyzeFunc, *int) {
	s := model.NewState()
	s.SetInt("x", 10)
	s.SetInt("y", 20)
	l := logOf(
		model.Incr(1, "x", 1),
		model.Incr(2, "y", 2),
		model.CopyPlus(3, "x", "y", 3),
		model.Incr(4, "y", 4),
	)
	checkpoint := graph.NewSet[model.OpID](1)
	// State-blind: decides from the operation id alone (a stand-in for
	// the LSN comparisons the real methods make).
	redo := func(op *model.Op, _ *model.State, _ *Log, analysis Analysis) bool {
		return op.ID() >= analysis.(model.OpID)
	}
	calls := new(int)
	analyze := func(_ *model.State, _ *Log, _ graph.Set[model.OpID], prev Analysis) Analysis {
		*calls++
		if prev != nil {
			return prev
		}
		return model.OpID(3)
	}
	return s, l, checkpoint, redo, analyze, calls
}

func TestDecideRedoMatchesRecoverDecisions(t *testing.T) {
	s, l, cp, redo, analyze, decideCalls := decideFixture()
	d := DecideRedo(s.Clone(), l, cp, redo, analyze)

	if got := []model.OpID{3, 4}; len(d.Replay) != 2 || d.Replay[0].Op.ID() != got[0] || d.Replay[1].Op.ID() != got[1] {
		t.Fatalf("Replay = %v", d.Replay)
	}
	if !d.RedoSet.Has(3) || !d.RedoSet.Has(4) || len(d.RedoSet) != 2 {
		t.Errorf("RedoSet = %v", d.RedoSet)
	}
	if !d.Installed.Has(1) || !d.Installed.Has(2) || len(d.Installed) != 2 {
		t.Errorf("Installed = %v", d.Installed)
	}
	if d.Examined != 3 { // op 1 is checkpointed, not examined
		t.Errorf("Examined = %d, want 3", d.Examined)
	}

	// The same scan drives Recover: same sets, same analysis call count.
	recCalls := *decideCalls
	rec, err := Recover(s.Clone(), l, cp, redo, analyze)
	if err != nil {
		t.Fatal(err)
	}
	if *decideCalls-recCalls != recCalls {
		t.Errorf("analysis called %d times by Recover, %d by DecideRedo", *decideCalls-recCalls, recCalls)
	}
	if len(rec.RedoSet) != len(d.RedoSet) || rec.Examined != d.Examined {
		t.Errorf("Recover decided differently: redo %v examined %d", rec.RedoSet, rec.Examined)
	}
}

func TestDecideRedoDoesNotTouchState(t *testing.T) {
	s, l, cp, redo, analyze, _ := decideFixture()
	before := s.Clone()
	DecideRedo(s, l, cp, redo, analyze)
	if !s.Equal(before) {
		t.Errorf("DecideRedo mutated the state: %v", s.Diff(before))
	}
}

func TestSameOutcomeAcceptsIdenticalResults(t *testing.T) {
	s, l, cp, redo, analyze, _ := decideFixture()
	a, err := Recover(s.Clone(), l, cp, redo, analyze)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Recover(s.Clone(), l, cp, redo, analyze)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SameOutcome(b); err != nil {
		t.Errorf("identical recoveries judged different: %v", err)
	}
}

func TestSameOutcomeDetectsEveryDivergence(t *testing.T) {
	s, l, cp, redo, analyze, _ := decideFixture()
	mk := func() *Result {
		r, err := Recover(s.Clone(), l, cp, redo, analyze)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	stateDiff := mk()
	stateDiff.State.SetInt("x", 999)
	if err := mk().SameOutcome(stateDiff); err == nil {
		t.Error("state divergence not detected")
	}

	redoDiff := mk()
	redoDiff.RedoSet.Add(2)
	if err := mk().SameOutcome(redoDiff); err == nil {
		t.Error("redo-set divergence not detected")
	}

	orderDiff := mk()
	orderDiff.Replayed[0], orderDiff.Replayed[1] = orderDiff.Replayed[1], orderDiff.Replayed[0]
	if err := mk().SameOutcome(orderDiff); err == nil {
		t.Error("replay-order divergence not detected")
	}

	examDiff := mk()
	examDiff.Examined++
	if err := mk().SameOutcome(examDiff); err == nil {
		t.Error("examined-count divergence not detected")
	}

	if err := mk().SameOutcome(nil); err == nil {
		t.Error("nil result not detected")
	}
}
