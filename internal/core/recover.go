package core

import (
	"fmt"
	"time"

	"redotheory/internal/graph"
	"redotheory/internal/model"
	"redotheory/internal/obs"
)

// Analysis is the opaque value produced by a recovery method's analysis
// phase (Section 4.3). It might be a log position, a dirty-page table, or
// nothing at all.
type Analysis interface{}

// AnalyzeFunc maps a state, a log, the set of currently unrecovered
// operations, and the previous analysis to a new analysis. The recovery
// procedure invokes it at the start of every loop iteration with the
// previous value (nil on the first iteration); a method with a single
// up-front analysis phase returns its computed value on the first call
// and echoes prev thereafter.
type AnalyzeFunc func(state *model.State, log *Log, unrecovered graph.Set[model.OpID], prev Analysis) Analysis

// RedoTest decides whether a logged operation should be replayed
// (Section 4.4). It is the heart of the recovery procedure.
type RedoTest func(op *model.Op, state *model.State, log *Log, analysis Analysis) bool

// Result reports what an execution of the recovery procedure did.
type Result struct {
	// State is the rebuilt system state at termination.
	State *model.State
	// RedoSet is the set of operations for which the redo test returned
	// true (the paper's redo_set).
	RedoSet graph.Set[model.OpID]
	// Installed is operations(log) − redo_set: the operations recovery
	// considered installed.
	Installed graph.Set[model.OpID]
	// Replayed lists the redone operations in replay (log) order.
	Replayed []model.OpID
	// Examined counts loop iterations (log records examined).
	Examined int
}

// Recover is the redo recovery procedure of Figure 6. It scans the
// unrecovered operations — the logged operations outside the checkpoint —
// in log order; for each it runs the analysis phase, applies the redo
// test, and replays the operation if the test says yes. The state is
// mutated in place and also returned in the Result.
//
// Correctness is the Recovery Corollary (Corollary 4): if the installed
// set operations(log) − redo_set induces a prefix of the installation
// graph that explains the pre-recovery state, Recover terminates with the
// state determined by the conflict graph.
func Recover(state *model.State, log *Log, checkpoint graph.Set[model.OpID], redo RedoTest, analyze AnalyzeFunc) (*Result, error) {
	return RecoverObserved(nil, state, log, checkpoint, redo, analyze)
}

// RecoverObserved is Recover with telemetry: an umbrella "recover" span
// over the whole procedure, per-record analysis/replay span events (when
// a sink is attached), per-recovery phase durations for analysis, replay,
// and scan (the loop minus the time inside analysis and replay), and
// admit/skip events with the redo-test verdict. A nil recorder makes it
// exactly Recover.
func RecoverObserved(rec *obs.Recorder, state *model.State, log *Log, checkpoint graph.Set[model.OpID], redo RedoTest, analyze AnalyzeFunc) (*Result, error) {
	res := &Result{
		State:     state,
		RedoSet:   graph.NewSet[model.OpID](),
		Installed: graph.NewSet[model.OpID](),
	}
	rec.Touch(obs.MRedoExamined, obs.MRedoAdmitted, obs.MRedoSkipped)
	// The loop below is the recovery hot path, so instrumentation is kept
	// to resolved counter handles (one atomic add each), raw clock reads
	// accumulated locally, and Emit calls that are a single atomic load
	// when no sink is attached; histogram observations happen once per
	// recovery, after the loop.
	obsOn := rec != nil
	cExamined := rec.CounterHandle(obs.MRedoExamined)
	cAdmitted := rec.CounterHandle(obs.MRedoAdmitted)
	cSkipped := rec.CounterHandle(obs.MRedoSkipped)
	cCheckpointed := rec.CounterHandle(obs.MRedoCheckpointed)
	cReplayed := rec.CounterHandle(obs.MReplayRecords)
	span := rec.StartRootSpan(obs.PhaseRecover, "sequential recovery")
	var analysisTotal, replayTotal time.Duration
	var analysis Analysis
	for _, r := range log.Records() {
		if checkpoint.Has(r.Op.ID()) {
			res.Installed.Add(r.Op.ID())
			cCheckpointed.Add(1)
			if rec.Sinking() {
				rec.Emit(obs.Event{Type: obs.EvSkip, LSN: int64(r.LSN), Op: r.Op.String(), Verdict: "checkpointed"})
			}
			continue
		}
		// O is the minimal operation in unrecovered: records are visited
		// in LSN order, which is consistent with the conflict order.
		res.Examined++
		cExamined.Add(1)
		if analyze != nil {
			var t0 time.Time
			if obsOn {
				rec.Emit(obs.Event{Type: obs.EvSpanBegin, Phase: obs.PhaseAnalysis})
				t0 = time.Now()
			}
			analysis = analyze(state, log, unrecoveredAfter(log, checkpoint, r.LSN), analysis)
			if obsOn {
				d := time.Since(t0)
				analysisTotal += d
				rec.Emit(obs.Event{Type: obs.EvSpanEnd, Phase: obs.PhaseAnalysis, Dur: d})
			}
		}
		if redo(r.Op, state, log, analysis) {
			res.RedoSet.Add(r.Op.ID())
			res.Replayed = append(res.Replayed, r.Op.ID())
			cAdmitted.Add(1)
			if rec.Sinking() {
				rec.Emit(obs.Event{Type: obs.EvAdmit, LSN: int64(r.LSN), Op: r.Op.String(), Verdict: "admit"})
			}
			var t0 time.Time
			if obsOn {
				rec.Emit(obs.Event{Type: obs.EvSpanBegin, Phase: obs.PhaseReplay})
				t0 = time.Now()
			}
			_, err := state.Apply(r.Op)
			if obsOn {
				d := time.Since(t0)
				replayTotal += d
				rec.Emit(obs.Event{Type: obs.EvSpanEnd, Phase: obs.PhaseReplay, Dur: d})
			}
			if err != nil {
				span.End()
				return nil, fmt.Errorf("core: replaying %s: %w", r.Op, err)
			}
			cReplayed.Add(1)
		} else {
			res.Installed.Add(r.Op.ID())
			cSkipped.Add(1)
			if rec.Sinking() {
				rec.Emit(obs.Event{Type: obs.EvSkip, LSN: int64(r.LSN), Op: r.Op.String(), Verdict: "redo-test-false"})
			}
		}
	}
	if rec != nil {
		total := span.End()
		// One observation per recovery for each nested phase (zero when the
		// phase did no work), so rollups carry a uniform schema.
		rec.ObserveDuration("phase."+string(obs.PhaseAnalysis), analysisTotal)
		rec.ObserveDuration("phase."+string(obs.PhaseReplay), replayTotal)
		rec.ObserveDuration("phase."+string(obs.PhaseScan), total-analysisTotal-replayTotal)
	}
	return res, nil
}

// unrecoveredAfter returns the operations still unrecovered when the
// record with the given LSN is about to be examined: logged operations
// outside the checkpoint with LSN ≥ from.
func unrecoveredAfter(log *Log, checkpoint graph.Set[model.OpID], from LSN) graph.Set[model.OpID] {
	out := graph.NewSet[model.OpID]()
	for _, r := range log.Records() {
		if r.LSN >= from && !checkpoint.Has(r.Op.ID()) {
			out.Add(r.Op.ID())
		}
	}
	return out
}

// PredictRedoSet runs the recovery procedure against a clone of the state
// and returns the redo set it would choose, leaving the real state
// untouched. The Recovery Invariant (Section 4.5) quantifies over exactly
// this hypothetical: "if, at any time, the recovery procedure would
// choose to redo some set of operations…"; the invariant checker uses
// this to audit a live system without disturbing it.
func PredictRedoSet(state *model.State, log *Log, checkpoint graph.Set[model.OpID], redo RedoTest, analyze AnalyzeFunc) (graph.Set[model.OpID], error) {
	res, err := Recover(state.Clone(), log, checkpoint, redo, analyze)
	if err != nil {
		return nil, err
	}
	return res.RedoSet, nil
}
