package core

import (
	"fmt"
	"time"

	"redotheory/internal/dense"
	"redotheory/internal/graph"
	"redotheory/internal/model"
	"redotheory/internal/obs"
)

// RecoverDense is the redo recovery procedure of Figure 6 running on
// the dense replay representation: the same scan, the same analysis
// calls, the same redo-test invocations, and the same final state as
// Recover, but replay recomputes against an interned, slice-backed
// state instead of the map-backed one, and the per-record read set is
// assembled in a pooled scratch map. The map/string API is preserved
// at the edges: state is read up front, mutated only by the final
// write-back of replayed variables, and returned in the Result exactly
// as Recover would have left it.
//
// Faithfulness rests on the same contract DecideRedo documents: the
// redo test and analysis function are state-blind, so handing them the
// pre-replay state (which the dense path never mutates mid-scan) makes
// the same decisions sequential Recover makes, and deterministic
// operations replayed in the same order against the same read values
// write the same values. The differential tests in internal/method
// assert state-for-state equality against map-based Recover for every
// method and workload shape.
func RecoverDense(state *model.State, log *Log, checkpoint graph.Set[model.OpID], redo RedoTest, analyze AnalyzeFunc) (*Result, error) {
	return RecoverDenseObserved(nil, state, log, checkpoint, redo, analyze)
}

// RecoverDenseObserved is RecoverDense with telemetry. It emits the
// identical instrumentation schema to RecoverObserved — the umbrella
// "recover" span, per-record analysis/replay span events when a sink
// is attached, admit/skip verdict events, and per-recovery phase
// durations for analysis, replay, and scan — so metrics consumers
// cannot tell the representations apart. A nil recorder makes it
// exactly RecoverDense.
func RecoverDenseObserved(rec *obs.Recorder, state *model.State, log *Log, checkpoint graph.Set[model.OpID], redo RedoTest, analyze AnalyzeFunc) (*Result, error) {
	lv := DefaultViews.ViewOfObserved(log, rec)
	ds := dense.FromState(lv.In, state)
	scratch := dense.GetScratch()
	defer dense.PutScratch(scratch)
	// touched collects the ids replay wrote (deduplicated via seen) for
	// the final write-back into the map-backed state.
	seen := make([]uint64, (lv.In.Len()+63)/64)
	touched := make([]uint32, 0, 16)

	res := &Result{
		State: state,
		// Presized: every logged operation lands in exactly one of the
		// two sets, so capacity hints cost nothing and save the growth
		// reallocations of the scan.
		RedoSet:   make(graph.Set[model.OpID], log.Len()),
		Installed: make(graph.Set[model.OpID], log.Len()),
		// Presized for the worst case (every record admitted): append
		// growth on a 512-record replay costs ~9 reallocations.
		Replayed: make([]model.OpID, 0, log.Len()),
	}
	rec.Touch(obs.MRedoExamined, obs.MRedoAdmitted, obs.MRedoSkipped)
	// Hot path: resolved counter handles, raw clock accumulation, and
	// sink-guarded event payloads — see RecoverObserved for the
	// rationale.
	obsOn := rec != nil
	cExamined := rec.CounterHandle(obs.MRedoExamined)
	cAdmitted := rec.CounterHandle(obs.MRedoAdmitted)
	cSkipped := rec.CounterHandle(obs.MRedoSkipped)
	cCheckpointed := rec.CounterHandle(obs.MRedoCheckpointed)
	cReplayed := rec.CounterHandle(obs.MReplayRecords)
	// Root span: a top-level sequential recovery begins its own trace;
	// one nested inside a supervised attempt joins the attempt's tree.
	span := rec.StartRootSpan(obs.PhaseRecover, "sequential dense recovery")
	var analysisTotal, replayTotal time.Duration
	var analysis Analysis
	// Per-record micro events (verdicts plus the id-less analysis/replay
	// span pairs) are batched into one EmitBatch per record: the
	// emission lock and clock are paid once per record, which is what
	// keeps full tracing inside the redobench overhead tolerance.
	var evbuf [5]obs.Event
	for i, r := range log.Records() {
		sinking := rec.Sinking()
		ev := evbuf[:0]
		if checkpoint.Has(r.Op.ID()) {
			res.Installed.Add(r.Op.ID())
			cCheckpointed.Add(1)
			if sinking {
				rec.Emit(obs.Event{Type: obs.EvSkip, LSN: int64(r.LSN), Op: r.Op.String(), Verdict: "checkpointed"})
			}
			continue
		}
		res.Examined++
		cExamined.Add(1)
		if analyze != nil {
			var t0 time.Time
			if obsOn {
				t0 = time.Now()
			}
			analysis = analyze(state, log, unrecoveredAfter(log, checkpoint, r.LSN), analysis)
			if obsOn {
				d := time.Since(t0)
				analysisTotal += d
				if sinking {
					ev = append(ev,
						obs.Event{Type: obs.EvSpanBegin, Phase: obs.PhaseAnalysis},
						obs.Event{Type: obs.EvSpanEnd, Phase: obs.PhaseAnalysis, Dur: d})
				}
			}
		}
		if redo(r.Op, state, log, analysis) {
			res.RedoSet.Add(r.Op.ID())
			res.Replayed = append(res.Replayed, r.Op.ID())
			cAdmitted.Add(1)
			if sinking {
				ev = append(ev, obs.Event{Type: obs.EvAdmit, LSN: int64(r.LSN), Op: r.Op.String(), Verdict: "admit"})
			}
			var t0 time.Time
			if obsOn {
				t0 = time.Now()
			}
			v := &lv.Views[i]
			clear(scratch.Reads)
			rvars := r.Op.Reads()
			for k, id := range v.Reads {
				scratch.Reads[rvars[k]] = ds.Value(id)
			}
			ws, err := r.Op.ComputeFrom(scratch.Reads)
			if obsOn {
				d := time.Since(t0)
				replayTotal += d
				if sinking {
					ev = append(ev,
						obs.Event{Type: obs.EvSpanBegin, Phase: obs.PhaseReplay},
						obs.Event{Type: obs.EvSpanEnd, Phase: obs.PhaseReplay, Dur: d})
				}
			}
			if err != nil {
				span.End()
				return nil, fmt.Errorf("core: replaying %s: %w", r.Op, err)
			}
			wvars := r.Op.Writes()
			for k, id := range v.Writes {
				ds.Set(id, ws[wvars[k]])
				if seen[id>>6]&(1<<(id&63)) == 0 {
					seen[id>>6] |= 1 << (id & 63)
					touched = append(touched, id)
				}
			}
			cReplayed.Add(1)
		} else {
			res.Installed.Add(r.Op.ID())
			cSkipped.Add(1)
			if sinking {
				ev = append(ev, obs.Event{Type: obs.EvSkip, LSN: int64(r.LSN), Op: r.Op.String(), Verdict: "redo-test-false"})
			}
		}
		if len(ev) > 0 {
			rec.EmitBatch(ev)
		}
	}
	// Write-back: install the replayed variables into the map-backed
	// state, which until here was only read.
	ds.WriteBack(state, touched)
	if rec != nil {
		total := span.End()
		// One observation per recovery for each nested phase (zero when
		// the phase did no work), so rollups carry a uniform schema.
		rec.ObserveDuration("phase."+string(obs.PhaseAnalysis), analysisTotal)
		rec.ObserveDuration("phase."+string(obs.PhaseReplay), replayTotal)
		rec.ObserveDuration("phase."+string(obs.PhaseScan), total-analysisTotal-replayTotal)
	}
	return res, nil
}
