package core

import (
	"fmt"

	"redotheory/internal/conflict"
	"redotheory/internal/graph"
	"redotheory/internal/install"
	"redotheory/internal/model"
)

// Auditor is the online form of the recovery-invariant checker: instead
// of rebuilding the conflict and installation graphs from a log after
// the fact, a running LSN-based system feeds it events as they happen —
// each logged operation, each page install — and can ask at any moment
// whether a crash right now would leave a recoverable state. Everything
// is maintained incrementally: the conflict graph grows by appending,
// the installation graph syncs only the new edges, and the written
// values are recorded in a ledger as the operations execute, so an
// audit never replays history.
//
// The auditor derives the installed set the way LSN recovery does
// (Section 6.3/6.4): an operation is installed when every page it wrote
// carries a stable LSN at least as large as the operation's. Feeding it
// a method with a different installed-set discipline (System R logical
// recovery) requires the offline Checker instead.
type Auditor struct {
	cg  *conflict.Graph
	ig  *install.Graph
	log *Log
	// ledger records written values and doubles as the ValueSource.
	ledger *valueLedger
	// stableLSN tracks each page's stable LSN as reported by
	// PageInstalled.
	stableLSN map[model.Var]LSN
	// writesByPage lists, per page, the LSNs of the operations writing
	// it, in order — for deriving the installed set cheaply.
	writesByPage map[model.Var][]model.OpID
	// Audits counts invariant checks performed.
	Audits int
}

// valueLedger implements install.ValueSource incrementally.
type valueLedger struct {
	initial *model.State
	running *model.State
	values  map[model.OpID]model.WriteSet
}

func (l *valueLedger) Initial() *model.State { return l.initial.Clone() }

func (l *valueLedger) FinalState() *model.State { return l.running.Clone() }

func (l *valueLedger) WriteValue(op model.OpID, x model.Var) (model.Value, bool) {
	v, ok := l.values[op][x]
	return v, ok
}

// NewAuditor returns an online auditor over the given initial state.
func NewAuditor(initial *model.State) *Auditor {
	cg := conflict.New()
	return &Auditor{
		cg:  cg,
		ig:  install.NewIncremental(cg),
		log: NewLog(),
		ledger: &valueLedger{
			initial: initial.Clone(),
			running: initial.Clone(),
			values:  make(map[model.OpID]model.WriteSet),
		},
		stableLSN:    make(map[model.Var]LSN),
		writesByPage: make(map[model.Var][]model.OpID),
	}
}

// Logged records the next logged operation and returns its LSN. The
// auditor executes the operation against its running copy of the
// volatile state to learn the values it wrote.
func (a *Auditor) Logged(op *model.Op) (LSN, error) {
	ws, err := a.ledger.running.Apply(op)
	if err != nil {
		return 0, fmt.Errorf("core: auditor executing %s: %w", op, err)
	}
	a.ledger.values[op.ID()] = ws
	rec := a.log.Append(op)
	a.cg.Append(op)
	a.ig.Sync()
	for _, x := range op.Writes() {
		a.writesByPage[x] = append(a.writesByPage[x], op.ID())
	}
	return rec.LSN, nil
}

// PageInstalled records that a page reached stable storage tagged with
// the given LSN.
func (a *Auditor) PageInstalled(x model.Var, lsn LSN) {
	if lsn > a.stableLSN[x] {
		a.stableLSN[x] = lsn
	}
}

// InstalledSet derives the operations the page-LSN discipline considers
// installed: every written page stable at or beyond the operation's LSN.
func (a *Auditor) InstalledSet() graph.Set[model.OpID] {
	out := graph.NewSet[model.OpID]()
	for _, r := range a.log.Records() {
		installed := true
		for _, x := range r.Op.Writes() {
			if a.stableLSN[x] < r.LSN {
				installed = false
				break
			}
		}
		if installed {
			out.Add(r.Op.ID())
		}
	}
	return out
}

// Audit checks the Recovery Invariant for a hypothetical crash right
// now: the derived installed set must induce a prefix of the
// installation graph that explains the given stable state.
func (a *Auditor) Audit(stable *model.State) *Report {
	a.Audits++
	installed := a.InstalledSet()
	rep := &Report{Installed: installed, RedoSet: complementOf(a.cg, installed)}
	if e, bad := a.ig.PrefixViolation(installed); bad {
		rep.Violations = append(rep.Violations, Violation{
			Kind: NotPrefix,
			Edge: e,
			Detail: fmt.Sprintf("operation %d is installed but its installation-graph predecessor %d is not (%s conflict)",
				e[1], e[0], a.cg.Kind(e[0], e[1])),
		})
	} else if err := a.ig.Explains(a.ledger, installed, stable); err != nil {
		if f, ok := err.(*install.ExplainFailure); ok && !f.NotPrefixSet {
			rep.Violations = append(rep.Violations, Violation{
				Kind: ExposedMismatch, Var: f.Var, Got: f.Got, Want: f.Want,
				Detail: err.Error(),
			})
		} else {
			rep.Violations = append(rep.Violations, Violation{Kind: NotPrefix, Detail: err.Error()})
		}
	}
	rep.OK = len(rep.Violations) == 0
	return rep
}

// Log returns the auditor's log view of the history.
func (a *Auditor) Log() *Log { return a.log }

// FinalState returns the state the full history determines.
func (a *Auditor) FinalState() *model.State { return a.ledger.FinalState() }
