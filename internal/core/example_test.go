package core_test

import (
	"fmt"

	"redotheory/internal/core"
	"redotheory/internal/graph"
	"redotheory/internal/model"
)

// ExampleRecover runs the paper's Figure 6 procedure over a three-op
// history with the middle operation installed: the redo test skips it
// and recovery rebuilds the final state.
func ExampleRecover() {
	o := model.Incr(1, "x", 1)          // O: x←x+1
	p := model.CopyPlus(2, "y", "x", 1) // P: y←x+1
	q := model.Incr(3, "x", 1)          // Q: x←x+1

	log := core.NewLog()
	for _, op := range []*model.Op{o, p, q} {
		log.Append(op)
	}
	// Crash state: only P installed (x still initial 1, y=3).
	state := model.StateOf(map[model.Var]model.Value{
		"x": model.IntVal(1), "y": model.IntVal(3),
	})
	installed := graph.NewSet[model.OpID](p.ID())
	redo := func(op *model.Op, _ *model.State, _ *core.Log, _ core.Analysis) bool {
		return !installed.Has(op.ID())
	}
	res, err := core.Recover(state, log, graph.NewSet[model.OpID](), redo, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("replayed:", len(res.RedoSet))
	fmt.Println("state:", res.State)
	// Output:
	// replayed: 2
	// state: {x=3 y=3}
}

// ExampleChecker audits the Recovery Invariant for the unrecoverable
// Scenario 1 configuration and prints the diagnosis.
func ExampleChecker() {
	a := model.CopyPlus(1, "x", "y", 1)
	b := model.AssignConst(2, "y", model.IntVal(2))
	log := core.NewLog()
	log.Append(a)
	log.Append(b)
	ck, err := core.NewChecker(log, model.NewState())
	if err != nil {
		panic(err)
	}
	state := model.StateOf(map[model.Var]model.Value{"y": model.IntVal(2)})
	rep := ck.CheckInstalled(state, graph.NewSet[model.OpID](b.ID()))
	fmt.Println(rep.Summary())
	// Output:
	// recovery invariant VIOLATED (1 installed, 1 to redo):
	//   - [not-a-prefix] operation 2 is installed but its installation-graph predecessor 1 is not (RW conflict)
}

// ExampleAuditor feeds the online auditor a two-op history and installs
// the pages in a legal order.
func ExampleAuditor() {
	aud := core.NewAuditor(model.NewState())
	opB := model.AssignConst(1, "y", model.IntVal(2))
	opA := model.CopyPlus(2, "x", "y", 1)
	if _, err := aud.Logged(opB); err != nil {
		panic(err)
	}
	lsnA, err := aud.Logged(opA)
	if err != nil {
		panic(err)
	}
	aud.PageInstalled("x", lsnA)
	stable := model.StateOf(map[model.Var]model.Value{"x": model.IntVal(3)})
	fmt.Println(aud.Audit(stable).Summary())
	// Output:
	// recovery invariant HOLDS: 1 installed, 1 to redo
}
