package core

import (
	"testing"

	"redotheory/internal/graph"
	"redotheory/internal/model"
)

// TestRedoSetLargerThanNecessary renders Section 7's closing observation
// executable: recovery may replay operations that are already installed,
// and may even replay operations whose writes land on unexposed
// variables with values different from the original execution — as long
// as the installed complement still forms an explaining prefix. Here the
// history is X: x←3, A: z←x+1, B: z←7 (blind), fully installed; a redo
// test that needlessly replays A and B is harmless: A rewrites z to 4,
// B's blind write restores 7, and the complement {X} explains the final
// state because z is unexposed by it (A writes z without reading it).
func TestRedoSetLargerThanNecessary(t *testing.T) {
	x := model.AssignConst(1, "x", model.IntVal(3))
	a := model.CopyPlus(2, "z", "x", 1)
	b := model.AssignConst(3, "z", model.IntVal(7))
	l := NewLog()
	for _, op := range []*model.Op{x, a, b} {
		l.Append(op)
	}
	ck, err := NewChecker(l, model.NewState())
	if err != nil {
		t.Fatal(err)
	}
	final := ck.FinalState() // {x=3 z=7}
	// Everything is installed; an over-eager redo test replays A and B.
	overEager := func(op *model.Op, _ *model.State, _ *Log, _ Analysis) bool {
		return op.ID() != 1
	}
	rep := ck.Check(final.Clone(), l, graph.NewSet[model.OpID](), overEager, nil, true)
	if !rep.OK {
		t.Fatalf("over-eager redo set rejected: %s", rep.Summary())
	}
	res, err := Recover(final.Clone(), l, graph.NewSet[model.OpID](), overEager, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.State.Equal(final) {
		t.Errorf("recovered %v, want %v", res.State, final)
	}
	if len(res.RedoSet) != 2 {
		t.Errorf("redo set = %v, want {A,B}", res.RedoSet)
	}

	// The same latitude does NOT extend to replaying A alone: {X,B} is a
	// prefix of the installation graph but does not explain the state
	// mid-replay... more precisely, replaying only A rewrites z to 4 and
	// nothing restores it, and the checker's end-to-end verification
	// catches the divergence.
	onlyA := func(op *model.Op, _ *model.State, _ *Log, _ Analysis) bool {
		return op.ID() == 2
	}
	rep = ck.Check(final.Clone(), l, graph.NewSet[model.OpID](), onlyA, nil, true)
	if rep.OK {
		t.Error("replaying A without B accepted; it corrupts z")
	}
}

// TestPhysicalStyleFullReplayAlwaysSafe is the blanket version: with a
// history of blind writes, replaying every operation from any
// explainable state is idempotent.
func TestPhysicalStyleFullReplayAlwaysSafe(t *testing.T) {
	l := NewLog()
	for i := 1; i <= 10; i++ {
		v := model.Var([]string{"p", "q", "r"}[i%3])
		l.Append(model.AssignConst(model.OpID(i), v, model.IntVal(int64(i*11))))
	}
	ck, err := NewChecker(l, model.NewState())
	if err != nil {
		t.Fatal(err)
	}
	final := ck.FinalState()
	replayAll := func(*model.Op, *model.State, *Log, Analysis) bool { return true }
	// From the final state (everything installed) and from the initial
	// state (nothing installed), full replay lands on the final state.
	for _, start := range []*model.State{final.Clone(), model.NewState()} {
		res, err := Recover(start, l, graph.NewSet[model.OpID](), replayAll, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.State.Equal(final) {
			t.Errorf("full replay from %v diverged", start)
		}
	}
}
