package core

import (
	"testing"

	"redotheory/internal/model"
	"redotheory/internal/obs"
)

func TestGraphCacheHitsOnSameLog(t *testing.T) {
	c := NewGraphCache(4)
	l := logOf(model.Incr(1, "x", 1), model.CopyPlus(2, "y", "x", 1))
	cg1, ig1 := c.Graphs(l)
	cg2, ig2 := c.Graphs(l)
	if cg1 != cg2 || ig1 != ig2 {
		t.Error("second lookup rebuilt the graphs")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("Hits = %d, Misses = %d, want 1 and 1", c.Hits, c.Misses)
	}
	if cg1.NumOps() != 2 {
		t.Errorf("cached conflict graph has %d ops", cg1.NumOps())
	}
}

func TestGraphCacheHitsAcrossSharedProjections(t *testing.T) {
	// Prefix shares record pointers with its source, so a full-length
	// prefix is the same key and a shorter prefix a different one.
	c := NewGraphCache(4)
	l := logOf(model.Incr(1, "x", 1), model.Incr(2, "x", 1), model.Incr(3, "x", 1))
	cgFull, _ := c.Graphs(l)
	cgSame, _ := c.Graphs(l.Prefix(3))
	if cgFull != cgSame {
		t.Error("identical record sequence missed the cache")
	}
	cgShort, _ := c.Graphs(l.Prefix(2))
	if cgShort == cgFull {
		t.Error("shorter prefix shared the full log's graphs")
	}
	if cgShort.NumOps() != 2 {
		t.Errorf("prefix graph has %d ops, want 2", cgShort.NumOps())
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestGraphCacheKeyChangesOnAppend(t *testing.T) {
	c := NewGraphCache(4)
	l := logOf(model.Incr(1, "x", 1))
	cg1, _ := c.Graphs(l)
	l.Append(model.Incr(2, "x", 1))
	cg2, _ := c.Graphs(l)
	if cg1 == cg2 {
		t.Error("appended log reused the stale cached graph")
	}
	if cg2.NumOps() != 2 {
		t.Errorf("rebuilt graph has %d ops, want 2", cg2.NumOps())
	}
}

func TestGraphCacheEvictsFIFO(t *testing.T) {
	c := NewGraphCache(2)
	l1 := logOf(model.Incr(1, "x", 1))
	l2 := logOf(model.Incr(2, "x", 1))
	l3 := logOf(model.Incr(3, "x", 1))
	c.Graphs(l1)
	c.Graphs(l2)
	c.Graphs(l3) // evicts l1
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	misses := c.Misses
	c.Graphs(l2) // still cached
	if c.Misses != misses {
		t.Error("l2 was evicted; FIFO should have evicted l1")
	}
	c.Graphs(l1) // rebuilt
	if c.Misses != misses+1 {
		t.Error("l1 should have been evicted and rebuilt")
	}
}

func TestGraphCacheEmptyLog(t *testing.T) {
	c := NewGraphCache(2)
	cg1, _ := c.Graphs(NewLog())
	cg2, _ := c.Graphs(NewLog())
	if cg1 != cg2 {
		t.Error("two empty logs should share the empty-key entry")
	}
	if cg1.NumOps() != 0 {
		t.Errorf("empty log graph has %d ops", cg1.NumOps())
	}
}

func TestGraphCacheConcurrentAccess(t *testing.T) {
	c := NewGraphCache(8)
	logs := []*Log{
		logOf(model.Incr(1, "x", 1), model.Incr(2, "y", 1)),
		logOf(model.Incr(3, "x", 1)),
		logOf(model.Incr(4, "z", 2), model.CopyPlus(5, "x", "z", 1)),
	}
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				l := logs[(w+i)%len(logs)]
				cg, ig := c.Graphs(l)
				if cg == nil || ig == nil {
					t.Error("nil graph from cache")
					return
				}
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}

// TestGraphCacheCountersOnRecorder mirrors the view-cache counter test
// for the op-graph cache: MGraphMisses on first build, MGraphHits on
// reuse, nil recorder tolerated.
func TestGraphCacheCountersOnRecorder(t *testing.T) {
	c := NewGraphCache(4)
	l := logOf(model.Incr(1, "x", 1), model.CopyPlus(2, "y", "x", 1))
	rec := obs.New()
	cg1, ig1 := c.GraphsObserved(l, rec)
	if got := rec.CounterValue(obs.MGraphMisses); got != 1 {
		t.Fatalf("graph misses = %d after first lookup, want 1", got)
	}
	cg2, ig2 := c.GraphsObserved(l, rec)
	if cg2 != cg1 || ig2 != ig1 {
		t.Fatal("cache returned different graphs for the same prefix")
	}
	if got := rec.CounterValue(obs.MGraphHits); got != 1 {
		t.Fatalf("graph hits = %d after reuse, want 1", got)
	}
	if cg3, _ := c.GraphsObserved(l, nil); cg3 != cg1 {
		t.Fatal("nil-recorder lookup returned different graphs")
	}
}
