package core

import (
	"sync"

	"redotheory/internal/conflict"
	"redotheory/internal/install"
	"redotheory/internal/obs"
)

// GraphCache memoizes conflict- and installation-graph construction
// keyed on log content. During a fault campaign the same stable log
// prefix is analyzed repeatedly — the invariant checker, degraded
// recovery's audit, and the parallel replay planner each regenerate the
// conflict graph from the same records — and the graphs are pure
// functions of the record sequence, so rebuilding them is wasted work.
//
// The key is (first record, last record, length) by pointer identity.
// Records are created once by Log.Append and shared by every derived
// log (Prefix, TruncateBefore, the WAL manager's StableLog projection),
// and a log's records are a contiguous LSN-ordered run of its source's,
// so two logs agreeing on those three fields hold identical record
// sequences. Media-fault corruption (wal.CorruptRecord) poisons
// checksums without touching the operation a record carries, so a
// cached graph stays valid across it.
//
// Cached graphs are shared: callers must treat them as immutable
// (read-only queries only, no Append/Sync). All methods are safe for
// concurrent use — the parallel campaign engine hits one cache from
// many workers.
type GraphCache struct {
	mu      sync.Mutex
	entries map[graphKey]*graphEntry
	fifo    []graphKey
	cap     int
	// Hits and Misses count lookups, for tests and tuning.
	Hits, Misses int
}

type graphKey struct {
	first, last *Record
	n           int
}

type graphEntry struct {
	cg *conflict.Graph
	ig *install.Graph
}

// NewGraphCache returns a cache holding at most capacity log prefixes
// (FIFO eviction; capacity < 1 means 1).
func NewGraphCache(capacity int) *GraphCache {
	if capacity < 1 {
		capacity = 1
	}
	return &GraphCache{entries: make(map[graphKey]*graphEntry), cap: capacity}
}

// DefaultGraphs is the process-wide cache used by NewChecker and the
// partition planner.
var DefaultGraphs = NewGraphCache(128)

func keyOf(log *Log) graphKey {
	recs := log.Records()
	if len(recs) == 0 {
		return graphKey{}
	}
	return graphKey{first: recs[0], last: recs[len(recs)-1], n: len(recs)}
}

// Graphs returns the conflict graph and installation graph for the
// log's record sequence, building and caching them on first sight.
func (c *GraphCache) Graphs(log *Log) (*conflict.Graph, *install.Graph) {
	cg, ig, _ := c.graphs(log)
	return cg, ig
}

// GraphsObserved is Graphs plus cache-effectiveness telemetry: the
// lookup is counted as a hit or miss on the recorder (MGraphHits /
// MGraphMisses).
func (c *GraphCache) GraphsObserved(log *Log, rec *obs.Recorder) (*conflict.Graph, *install.Graph) {
	cg, ig, hit := c.graphs(log)
	if hit {
		rec.Inc(obs.MGraphHits)
	} else {
		rec.Inc(obs.MGraphMisses)
	}
	return cg, ig
}

// graphs reports whether the lookup hit alongside the graphs.
func (c *GraphCache) graphs(log *Log) (*conflict.Graph, *install.Graph, bool) {
	key := keyOf(log)
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.Hits++
		c.mu.Unlock()
		return e.cg, e.ig, true
	}
	c.Misses++
	c.mu.Unlock()

	// Build outside the lock: construction is the expensive part, and a
	// rare duplicate build is cheaper than serializing every worker.
	cg := log.ConflictGraph()
	ig := install.FromConflict(cg)

	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		return e.cg, e.ig, false
	}
	for len(c.fifo) >= c.cap {
		evict := c.fifo[0]
		c.fifo = c.fifo[1:]
		delete(c.entries, evict)
	}
	c.entries[key] = &graphEntry{cg: cg, ig: ig}
	c.fifo = append(c.fifo, key)
	return cg, ig, false
}

// Conflict returns the (possibly cached) conflict graph for the log.
func (c *GraphCache) Conflict(log *Log) *conflict.Graph {
	cg, _ := c.Graphs(log)
	return cg
}

// Len returns the number of cached prefixes.
func (c *GraphCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
