package core

import (
	"fmt"
	"sort"
	"time"

	"redotheory/internal/graph"
	"redotheory/internal/model"
	"redotheory/internal/obs"
)

// RedoDecision is the outcome of running the recovery procedure's
// decision phase alone: the log was scanned in LSN order, the analysis
// function and redo test ran exactly as in Recover, but no operation was
// applied. It is the input to the parallel replay engine, which replays
// Replay's records partitioned into independent components.
type RedoDecision struct {
	// RedoSet is the set the redo test admitted.
	RedoSet graph.Set[model.OpID]
	// Installed is operations(log) − redo_set.
	Installed graph.Set[model.OpID]
	// Replay lists the admitted records in LSN order — the order
	// sequential Recover would have applied them.
	Replay []*Record
	// ReplayIdx lists, parallel to Replay, each admitted record's index
	// in log.Records(); the dense replay engine uses it to address the
	// log view's record slice without a lookup.
	ReplayIdx []int
	// Examined counts log records examined (loop iterations).
	Examined int
}

// DecideRedo runs the decision phase of the recovery procedure of
// Figure 6 without applying any operation: the same scan, the same
// analysis calls, the same redo test invocations, against the given
// state.
//
// Separating decision from application is what makes partitioned replay
// possible, and it is faithful to sequential Recover exactly when the
// redo test and analysis function are state-blind: they may read the
// log, the analysis value, and any state captured at construction time
// (the page-LSN tables every Section 6 method uses), but not the state
// being rebuilt — in Recover that state mutates as replay progresses,
// here it does not. Every method in internal/method satisfies this: the
// paper's redo tests decide from LSN comparisons, not from recovering
// values. The property tests in internal/method assert the resulting
// equivalence against sequential Recover for every method.
func DecideRedo(state *model.State, log *Log, checkpoint graph.Set[model.OpID], redo RedoTest, analyze AnalyzeFunc) *RedoDecision {
	return DecideRedoObserved(nil, state, log, checkpoint, redo, analyze)
}

// DecideRedoObserved is DecideRedo with telemetry: a "decide" span over
// the whole phase, per-call analysis span events nested inside it (when
// a sink is attached), per-record admit/skip events carrying the
// redo-test verdict, and per-phase durations for analysis and the
// derived "scan" (decide minus analysis). A nil recorder makes it
// exactly DecideRedo.
func DecideRedoObserved(rec *obs.Recorder, state *model.State, log *Log, checkpoint graph.Set[model.OpID], redo RedoTest, analyze AnalyzeFunc) *RedoDecision {
	d := &RedoDecision{
		// Presized: every logged operation lands in exactly one of the
		// two sets (see RecoverDenseObserved).
		RedoSet:   make(graph.Set[model.OpID], log.Len()),
		Installed: make(graph.Set[model.OpID], log.Len()),
		// Presized for the worst case (every record admitted): append
		// growth on a long replay list is pure reallocation overhead.
		Replay:    make([]*Record, 0, log.Len()),
		ReplayIdx: make([]int, 0, log.Len()),
	}
	rec.Touch(obs.MRedoExamined, obs.MRedoAdmitted, obs.MRedoSkipped)
	// Hot path: resolved counter handles, raw clock accumulation, and
	// sink-guarded event payloads — see RecoverObserved for the rationale.
	obsOn := rec != nil
	cExamined := rec.CounterHandle(obs.MRedoExamined)
	cAdmitted := rec.CounterHandle(obs.MRedoAdmitted)
	cSkipped := rec.CounterHandle(obs.MRedoSkipped)
	cCheckpointed := rec.CounterHandle(obs.MRedoCheckpointed)
	span := rec.StartSpan(obs.PhaseDecide)
	var analysisTotal time.Duration
	var analysis Analysis
	for i, r := range log.Records() {
		if checkpoint.Has(r.Op.ID()) {
			d.Installed.Add(r.Op.ID())
			cCheckpointed.Add(1)
			if rec.Sinking() {
				rec.Emit(obs.Event{Type: obs.EvSkip, LSN: int64(r.LSN), Op: r.Op.String(), Verdict: "checkpointed"})
			}
			continue
		}
		d.Examined++
		cExamined.Add(1)
		if analyze != nil {
			var t0 time.Time
			if obsOn {
				rec.Emit(obs.Event{Type: obs.EvSpanBegin, Phase: obs.PhaseAnalysis})
				t0 = time.Now()
			}
			analysis = analyze(state, log, unrecoveredAfter(log, checkpoint, r.LSN), analysis)
			if obsOn {
				dur := time.Since(t0)
				analysisTotal += dur
				rec.Emit(obs.Event{Type: obs.EvSpanEnd, Phase: obs.PhaseAnalysis, Dur: dur})
			}
		}
		if redo(r.Op, state, log, analysis) {
			d.RedoSet.Add(r.Op.ID())
			d.Replay = append(d.Replay, r)
			d.ReplayIdx = append(d.ReplayIdx, i)
			cAdmitted.Add(1)
			if rec.Sinking() {
				rec.Emit(obs.Event{Type: obs.EvAdmit, LSN: int64(r.LSN), Op: r.Op.String(), Verdict: "admit"})
			}
		} else {
			d.Installed.Add(r.Op.ID())
			cSkipped.Add(1)
			if rec.Sinking() {
				rec.Emit(obs.Event{Type: obs.EvSkip, LSN: int64(r.LSN), Op: r.Op.String(), Verdict: "redo-test-false"})
			}
		}
	}
	if rec != nil {
		total := span.End()
		rec.ObserveDuration("phase."+string(obs.PhaseAnalysis), analysisTotal)
		rec.ObserveDuration("phase."+string(obs.PhaseScan), total-analysisTotal)
	}
	return d
}

// Result materializes the decision as a recovery Result over the given
// final state. The redo/installed sets and examined count are the
// decision's own; Replayed lists the admitted operations in LSN order —
// the order sequential Recover reports — regardless of the schedule
// that actually applied them, which is exactly the linearization
// DESIGN.md §8 licenses: any conflict-respecting application order is
// indistinguishable from the sequential one. Both the partitioned
// engine and the instant-restart serve engine report through this.
func (d *RedoDecision) Result(state *model.State) *Result {
	res := &Result{
		State:     state,
		RedoSet:   d.RedoSet,
		Installed: d.Installed,
		Examined:  d.Examined,
	}
	if len(d.Replay) > 0 {
		res.Replayed = make([]model.OpID, len(d.Replay))
		for i, r := range d.Replay {
			res.Replayed[i] = r.Op.ID()
		}
	}
	return res
}

// SameOutcome reports whether two recovery results are equivalent: the
// same final state, the same redo set, the same replay order, and the
// same number of records examined. It is the oracle the parallel replay
// engine is audited against — RecoverParallel must be indistinguishable
// from sequential Recover — and returns a descriptive error naming the
// first divergence found.
func (r *Result) SameOutcome(o *Result) error {
	if r == nil || o == nil {
		return fmt.Errorf("core: comparing nil recovery results")
	}
	if !r.State.Equal(o.State) {
		return fmt.Errorf("core: recovered states differ on %v", r.State.Diff(o.State))
	}
	if err := sameSet("redo", r.RedoSet, o.RedoSet); err != nil {
		return err
	}
	if err := sameSet("installed", r.Installed, o.Installed); err != nil {
		return err
	}
	if len(r.Replayed) != len(o.Replayed) {
		return fmt.Errorf("core: replayed %d operations, other replayed %d", len(r.Replayed), len(o.Replayed))
	}
	for i := range r.Replayed {
		if r.Replayed[i] != o.Replayed[i] {
			return fmt.Errorf("core: replay order diverges at position %d: op %d vs op %d", i, r.Replayed[i], o.Replayed[i])
		}
	}
	if r.Examined != o.Examined {
		return fmt.Errorf("core: examined %d records, other examined %d", r.Examined, o.Examined)
	}
	return nil
}

// sameSet compares two op-id sets, naming a witness of the difference.
func sameSet(what string, a, b graph.Set[model.OpID]) error {
	if len(a) == len(b) {
		ok := true
		for id := range a {
			if !b.Has(id) {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
	}
	var onlyA, onlyB []model.OpID
	for id := range a {
		if !b.Has(id) {
			onlyA = append(onlyA, id)
		}
	}
	for id := range b {
		if !a.Has(id) {
			onlyB = append(onlyB, id)
		}
	}
	sort.Slice(onlyA, func(i, j int) bool { return onlyA[i] < onlyA[j] })
	sort.Slice(onlyB, func(i, j int) bool { return onlyB[i] < onlyB[j] })
	return fmt.Errorf("core: %s sets differ (only in first: %v, only in second: %v)", what, onlyA, onlyB)
}
