package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"redotheory/internal/graph"
	"redotheory/internal/install"
	"redotheory/internal/model"
)

func logOf(ops ...*model.Op) *Log {
	l := NewLog()
	for _, o := range ops {
		l.Append(o)
	}
	return l
}

func TestLogAppendAndLookup(t *testing.T) {
	a := model.Incr(1, "x", 1)
	b := model.Incr(2, "y", 1)
	l := logOf(a, b)
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	if r := l.RecordOf(1); r == nil || r.LSN != 1 {
		t.Errorf("RecordOf(1) = %+v", r)
	}
	if r := l.RecordOf(2); r == nil || r.LSN != 2 {
		t.Errorf("RecordOf(2) = %+v", r)
	}
	ops := l.Operations()
	if len(ops) != 2 || !ops.Has(1) || !ops.Has(2) {
		t.Errorf("Operations = %v", ops)
	}
}

func TestLogDuplicatePanics(t *testing.T) {
	l := logOf(model.Incr(1, "x", 1))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate log record")
		}
	}()
	l.Append(model.Incr(1, "x", 1))
}

func TestLogPrefix(t *testing.T) {
	l := logOf(model.Incr(1, "x", 1), model.Incr(2, "x", 1), model.Incr(3, "x", 1))
	p := l.Prefix(2)
	if p.Len() != 2 {
		t.Fatalf("prefix len = %d", p.Len())
	}
	if p.RecordOf(3) != nil {
		t.Error("prefix contains truncated record")
	}
	if p.Records()[1].LSN != 2 {
		t.Error("prefix must preserve LSNs")
	}
	if full := l.Prefix(99); full.Len() != 3 {
		t.Error("over-long prefix should return everything")
	}
}

func TestLogValidateAgainst(t *testing.T) {
	a := model.CopyPlus(1, "x", "y", 1) // reads y
	b := model.AssignConst(2, "y", model.IntVal(2))
	l := logOf(a, b) // A then B, conflict edge A→B (RW)
	cg := l.ConflictGraph()
	if err := l.ValidateAgainst(cg); err != nil {
		t.Errorf("self-consistent log rejected: %v", err)
	}
	// A log in the opposite order violates the conflict edge.
	rev := logOf(b, a)
	if err := rev.ValidateAgainst(cg); err == nil {
		t.Error("conflict-violating log order accepted")
	}
	// A log missing an operation is rejected.
	short := logOf(a)
	if err := short.ValidateAgainst(cg); err == nil {
		t.Error("log with missing operations accepted")
	}
}

// oracleRedo returns a redo test that replays exactly the operations
// outside the given installed set, modelling a method that knows its
// installed set precisely.
func oracleRedo(installed graph.Set[model.OpID]) RedoTest {
	return func(op *model.Op, _ *model.State, _ *Log, _ Analysis) bool {
		return !installed.Has(op.ID())
	}
}

func TestRecoverFigure6Shape(t *testing.T) {
	// O: x←x+1, P: y←x+1, Q: x←x+1 from x=1. Install {P} (installation
	// prefix), crash, recover by replaying O and Q.
	o := model.Incr(1, "x", 1)
	p := model.CopyPlus(2, "y", "x", 1)
	q := model.Incr(3, "x", 1)
	l := logOf(o, p, q)
	installed := graph.NewSet[model.OpID](2)
	state := model.StateOf(map[model.Var]model.Value{"x": model.IntVal(1), "y": model.IntVal(3)})
	res, err := Recover(state, l, graph.NewSet[model.OpID](), oracleRedo(installed), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.State.GetInt("x") != 3 || res.State.GetInt("y") != 3 {
		t.Errorf("recovered %v, want x=3 y=3", res.State)
	}
	if len(res.RedoSet) != 2 || !res.RedoSet.Has(1) || !res.RedoSet.Has(3) {
		t.Errorf("redo set = %v, want {1,3}", res.RedoSet)
	}
	if len(res.Replayed) != 2 || res.Replayed[0] != 1 || res.Replayed[1] != 3 {
		t.Errorf("replay order = %v, want [1 3]", res.Replayed)
	}
	if res.Examined != 3 {
		t.Errorf("examined = %d, want 3", res.Examined)
	}
}

func TestRecoverHonorsCheckpoint(t *testing.T) {
	o := model.Incr(1, "x", 1)
	p := model.Incr(2, "x", 1)
	l := logOf(o, p)
	// Checkpoint covers O: recovery must not even examine it.
	state := model.StateOf(map[model.Var]model.Value{"x": model.IntVal(1)})
	res, err := Recover(state, l, graph.NewSet[model.OpID](1),
		func(*model.Op, *model.State, *Log, Analysis) bool { return true }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Examined != 1 {
		t.Errorf("examined = %d, want 1", res.Examined)
	}
	if res.State.GetInt("x") != 2 {
		t.Errorf("x = %d, want 2", res.State.GetInt("x"))
	}
	if !res.Installed.Has(1) {
		t.Error("checkpointed op not in installed set")
	}
}

func TestAnalysisPhaseThreading(t *testing.T) {
	// The analysis function sees nil first, then its own previous return
	// value; a single up-front analysis is the identity afterwards.
	o := model.Incr(1, "x", 1)
	p := model.Incr(2, "x", 1)
	q := model.Incr(3, "x", 1)
	l := logOf(o, p, q)
	calls := 0
	analyze := func(_ *model.State, _ *Log, unrecovered graph.Set[model.OpID], prev Analysis) Analysis {
		calls++
		if prev == nil {
			if len(unrecovered) != 3 {
				t.Errorf("first analysis saw %d unrecovered, want 3", len(unrecovered))
			}
			return "the-analysis"
		}
		return prev
	}
	var seen []Analysis
	redo := func(_ *model.Op, _ *model.State, _ *Log, a Analysis) bool {
		seen = append(seen, a)
		return true
	}
	if _, err := Recover(model.NewState(), l, graph.NewSet[model.OpID](), redo, analyze); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("analysis calls = %d, want 3 (once per iteration)", calls)
	}
	for _, a := range seen {
		if a != "the-analysis" {
			t.Errorf("redo test saw analysis %v", a)
		}
	}
}

func TestCorollary4Property(t *testing.T) {
	// Corollary 4: with any redo set whose complement is an explaining
	// installation prefix, recover terminates with the final state.
	// Random histories, random installation prefixes, junk in unexposed
	// variables, and a random split of the installed set between the
	// checkpoint and redo-test-filtered operations.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := randomOps(rng, 14, 4)
		l := logOf(ops...)
		s0 := randomState(rng, 4)
		ck, err := NewChecker(l, s0)
		if err != nil {
			return false
		}
		installed := randomPrefixOf(rng, ck.Install().DAG())
		state, err := ck.Install().DeterminedState(ck.StateGraph(), installed)
		if err != nil {
			return false
		}
		for _, x := range install.UnexposedVars(ck.Conflict(), installed) {
			state.SetInt(x, rng.Int63n(1<<40)+13)
		}
		// Split installed between checkpoint and redo-test knowledge.
		checkpoint := graph.NewSet[model.OpID]()
		for id := range installed {
			if rng.Float64() < 0.5 {
				checkpoint.Add(id)
			}
		}
		res, err := Recover(state, l, checkpoint, oracleRedo(installed), nil)
		if err != nil {
			return false
		}
		return res.State.Equal(ck.FinalState())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCheckerScenario1Violation(t *testing.T) {
	// Figure 1: installing only B violates the RW edge A→B.
	a := model.CopyPlus(1, "x", "y", 1)
	b := model.AssignConst(2, "y", model.IntVal(2))
	l := logOf(a, b)
	ck, err := NewChecker(l, model.NewState())
	if err != nil {
		t.Fatal(err)
	}
	state := model.StateOf(map[model.Var]model.Value{"y": model.IntVal(2)})
	rep := ck.CheckInstalled(state, graph.NewSet[model.OpID](2))
	if rep.OK {
		t.Fatal("checker accepted Scenario 1")
	}
	if rep.Violations[0].Kind != NotPrefix {
		t.Errorf("kind = %v, want NotPrefix", rep.Violations[0].Kind)
	}
	if rep.Violations[0].Edge != [2]model.OpID{1, 2} {
		t.Errorf("edge = %v, want 1→2", rep.Violations[0].Edge)
	}
	if !strings.Contains(rep.Summary(), "VIOLATED") {
		t.Errorf("summary = %q", rep.Summary())
	}
}

func TestCheckerScenario2OK(t *testing.T) {
	b := model.AssignConst(1, "y", model.IntVal(2))
	a := model.CopyPlus(2, "x", "y", 1)
	l := logOf(b, a)
	ck, err := NewChecker(l, model.NewState())
	if err != nil {
		t.Fatal(err)
	}
	state := model.StateOf(map[model.Var]model.Value{"x": model.IntVal(3)})
	rep := ck.CheckInstalled(state, graph.NewSet[model.OpID](2))
	if !rep.OK {
		t.Errorf("checker rejected Scenario 2: %s", rep.Summary())
	}
	if !strings.Contains(rep.Summary(), "HOLDS") {
		t.Errorf("summary = %q", rep.Summary())
	}
}

func TestCheckerExposedMismatch(t *testing.T) {
	// Install nothing but corrupt an exposed variable.
	o := model.Incr(1, "x", 1)
	l := logOf(o)
	ck, err := NewChecker(l, model.NewState())
	if err != nil {
		t.Fatal(err)
	}
	state := model.StateOf(map[model.Var]model.Value{"x": model.IntVal(42)})
	rep := ck.CheckInstalled(state, graph.NewSet[model.OpID]())
	if rep.OK {
		t.Fatal("corrupt exposed variable accepted")
	}
	v := rep.Violations[0]
	if v.Kind != ExposedMismatch || v.Var != "x" || model.AsInt(v.Got) != 42 || model.AsInt(v.Want) != 0 {
		t.Errorf("violation = %+v", v)
	}
}

func TestCheckerEndToEnd(t *testing.T) {
	// Full Check: a correct redo test passes with verifyEnd; a broken one
	// (skips a needed operation) is caught.
	o := model.Incr(1, "x", 1)
	p := model.CopyPlus(2, "y", "x", 1)
	l := logOf(o, p)
	ck, err := NewChecker(l, model.NewState())
	if err != nil {
		t.Fatal(err)
	}
	empty := graph.NewSet[model.OpID]()
	state := model.NewState()
	good := ck.Check(state, l, empty, oracleRedo(empty), nil, true)
	if !good.OK {
		t.Errorf("good redo test rejected: %s", good.Summary())
	}
	broken := func(op *model.Op, _ *model.State, _ *Log, _ Analysis) bool {
		return op.ID() != 1 // never redoes O, though nothing is installed
	}
	bad := ck.Check(state, l, empty, broken, nil, true)
	if bad.OK {
		t.Error("broken redo test accepted")
	}
	foundMismatch := false
	for _, v := range bad.Violations {
		if v.Kind == ExposedMismatch || v.Kind == RecoveryDiverged {
			foundMismatch = true
		}
	}
	if !foundMismatch {
		t.Errorf("violations = %v", bad.Violations)
	}
}

func TestCheckerLogInconsistent(t *testing.T) {
	a := model.CopyPlus(1, "x", "y", 1)
	b := model.AssignConst(2, "y", model.IntVal(2))
	ck, err := NewChecker(logOf(a, b), model.NewState())
	if err != nil {
		t.Fatal(err)
	}
	rev := logOf(b, a)
	rep := ck.Check(model.NewState(), rev, graph.NewSet[model.OpID](),
		func(*model.Op, *model.State, *Log, Analysis) bool { return true }, nil, false)
	if rep.OK || rep.Violations[0].Kind != LogInconsistent {
		t.Errorf("report = %s", rep.Summary())
	}
}

func TestCheckerPropertyRandomInstalledSets(t *testing.T) {
	// For random (not necessarily prefix) installed sets with the
	// corresponding state built faithfully when possible, the checker's
	// verdict must agree with the definition: prefix + exposed agreement.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := randomOps(rng, 12, 4)
		l := logOf(ops...)
		s0 := randomState(rng, 4)
		ck, err := NewChecker(l, s0)
		if err != nil {
			return false
		}
		// Random subset of operations, prefix or not.
		installed := graph.NewSet[model.OpID]()
		for _, id := range ck.Conflict().OpIDs() {
			if rng.Float64() < 0.5 {
				installed.Add(id)
			}
		}
		isPrefix := ck.Install().IsPrefix(installed)
		var state *model.State
		if isPrefix {
			state, err = ck.Install().DeterminedState(ck.StateGraph(), installed)
			if err != nil {
				return false
			}
		} else {
			state = s0.Clone()
		}
		rep := ck.CheckInstalled(state, installed)
		if !isPrefix {
			// Non-prefix sets must always be rejected with NotPrefix.
			return !rep.OK && rep.Violations[0].Kind == NotPrefix
		}
		return rep.OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestViolationKindString(t *testing.T) {
	kinds := map[ViolationKind]string{
		LogInconsistent:   "log-inconsistent",
		NotPrefix:         "not-a-prefix",
		ExposedMismatch:   "exposed-mismatch",
		RecoveryDiverged:  "recovery-diverged",
		ViolationKind(99): "ViolationKind(99)",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

// --- helpers ---

func randomOps(rng *rand.Rand, n, k int) []*model.Op {
	vars := make([]model.Var, k)
	for i := range vars {
		vars[i] = model.Var(string(rune('a' + i)))
	}
	ops := make([]*model.Op, n)
	for i := range ops {
		var reads, writes []model.Var
		for _, v := range vars {
			if rng.Float64() < 0.3 {
				reads = append(reads, v)
			}
			if rng.Float64() < 0.25 {
				writes = append(writes, v)
			}
		}
		if len(writes) == 0 {
			writes = append(writes, vars[rng.Intn(k)])
		}
		ops[i] = model.ReadWrite(model.OpID(i+1), "w", reads, writes)
	}
	return ops
}

func randomState(rng *rand.Rand, k int) *model.State {
	s := model.NewState()
	for i := 0; i < k; i++ {
		if rng.Float64() < 0.7 {
			s.SetInt(model.Var(string(rune('a'+i))), rng.Int63n(100))
		}
	}
	return s
}

func randomPrefixOf(rng *rand.Rand, dag *graph.Graph[model.OpID]) graph.Set[model.OpID] {
	order, err := dag.TopoOrder()
	if err != nil {
		panic(err)
	}
	s := graph.NewSet[model.OpID]()
	for _, k := range order {
		ok := true
		for _, p := range dag.Preds(k) {
			if !s.Has(p) {
				ok = false
				break
			}
		}
		if ok && rng.Float64() < 0.6 {
			s.Add(k)
		}
	}
	return s
}
