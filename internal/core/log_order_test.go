package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"redotheory/internal/graph"
	"redotheory/internal/model"
)

// TestLogNeedsOnlyConflictOrder renders Section 4.1's observation
// executable: "It is not necessary to have a totally ordered log
// reflecting the exact execution order... Only conflicting logged
// operations need to be ordered." A log written in any conflict-
// consistent permutation of the execution order validates against the
// conflict graph and recovers the same final state.
func TestLogNeedsOnlyConflictOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := randomOps(rng, 12, 4)
		s0 := randomState(rng, 4)
		execLog := logOf(ops...)
		ck, err := NewChecker(execLog, s0)
		if err != nil {
			return false
		}
		want := ck.FinalState()

		// Re-log in a random conflict-consistent order.
		shuffled := NewLog()
		indeg := make(map[model.OpID]int)
		var ready []*model.Op
		dag := ck.Conflict().DAG()
		for _, id := range dag.Nodes() {
			indeg[id] = dag.InDegree(id)
			if indeg[id] == 0 {
				ready = append(ready, ck.Conflict().Op(id))
			}
		}
		for len(ready) > 0 {
			i := rng.Intn(len(ready))
			op := ready[i]
			ready = append(ready[:i], ready[i+1:]...)
			shuffled.Append(op)
			for _, s := range dag.Succs(op.ID()) {
				indeg[s]--
				if indeg[s] == 0 {
					ready = append(ready, ck.Conflict().Op(s))
				}
			}
		}
		if err := shuffled.ValidateAgainst(ck.Conflict()); err != nil {
			return false
		}
		replayAll := func(*model.Op, *model.State, *Log, Analysis) bool { return true }
		res, err := Recover(s0.Clone(), shuffled, graph.NewSet[model.OpID](), replayAll, nil)
		if err != nil {
			return false
		}
		return res.State.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestCheckpointNeedNotBePrefix renders Section 4.2's remark executable:
// "The checkpointed log records usually constitute a prefix of the log,
// but that is not required." Scenario 2's installed set {A} is not a log
// prefix, yet handing it to recovery as the checkpoint works.
func TestCheckpointNeedNotBePrefix(t *testing.T) {
	b := model.AssignConst(1, "y", model.IntVal(2))
	a := model.CopyPlus(2, "x", "y", 1)
	l := logOf(b, a)
	ck, err := NewChecker(l, model.NewState())
	if err != nil {
		t.Fatal(err)
	}
	state := model.StateOf(map[model.Var]model.Value{"x": model.IntVal(3)})
	// Checkpoint covers only the later record.
	checkpoint := graph.NewSet[model.OpID](2)
	replayRest := func(*model.Op, *model.State, *Log, Analysis) bool { return true }
	rep := ck.Check(state, l, checkpoint, replayRest, nil, true)
	if !rep.OK {
		t.Fatalf("non-prefix checkpoint rejected: %s", rep.Summary())
	}
	res, err := Recover(state.Clone(), l, checkpoint, replayRest, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.State.Equal(ck.FinalState()) {
		t.Errorf("recovered %v, want %v", res.State, ck.FinalState())
	}
	if res.Examined != 1 {
		t.Errorf("examined %d records, want 1 (B only)", res.Examined)
	}
}
