package core

import (
	"fmt"
	"strings"

	"redotheory/internal/conflict"
	"redotheory/internal/graph"
	"redotheory/internal/install"
	"redotheory/internal/model"
	"redotheory/internal/obs"
	"redotheory/internal/stategraph"
)

// Report is the invariant checker's verdict on one system configuration.
type Report struct {
	// OK is true when the Recovery Invariant holds: the installed set
	// operations(log) − redo_set induces a prefix of the installation
	// graph that explains the state.
	OK bool
	// Installed is the audited installed set.
	Installed graph.Set[model.OpID]
	// RedoSet is the redo set the recovery procedure would choose.
	RedoSet graph.Set[model.OpID]
	// Violations lists everything found wrong, most fundamental first.
	Violations []Violation
}

// ViolationKind classifies invariant violations.
type ViolationKind int

const (
	// LogInconsistent: the log order contradicts the conflict order, or
	// the logged operations differ from the graph's (Section 4.1).
	LogInconsistent ViolationKind = iota
	// NotPrefix: the installed set is not an installation graph prefix —
	// some uninstalled operation precedes an installed one in the
	// installation graph (a Scenario 1 situation).
	NotPrefix
	// ExposedMismatch: an exposed variable's value differs from the value
	// the installed prefix determines (a lost or phantom update).
	ExposedMismatch
	// RecoveryDiverged: simulated recovery did not reach the final state
	// (reported when the checker is asked to verify end-to-end).
	RecoveryDiverged
)

// String names the kind.
func (k ViolationKind) String() string {
	switch k {
	case LogInconsistent:
		return "log-inconsistent"
	case NotPrefix:
		return "not-a-prefix"
	case ExposedMismatch:
		return "exposed-mismatch"
	case RecoveryDiverged:
		return "recovery-diverged"
	default:
		return fmt.Sprintf("ViolationKind(%d)", int(k))
	}
}

// Violation describes one way the invariant fails, with enough detail to
// debug the responsible component (cache manager, checkpointer, redo
// test…).
type Violation struct {
	Kind ViolationKind
	// Edge is the installation graph edge crossing the installed set
	// (NotPrefix), as uninstalled→installed operation ids.
	Edge [2]model.OpID
	// Var, Got, Want describe an exposed-variable mismatch.
	Var  model.Var
	Got  model.Value
	Want model.Value
	// Detail is a human-readable explanation.
	Detail string
}

// String renders the violation.
func (v Violation) String() string { return fmt.Sprintf("[%s] %s", v.Kind, v.Detail) }

// Summary renders the report for humans.
func (r *Report) Summary() string {
	if r.OK {
		return fmt.Sprintf("recovery invariant HOLDS: %d installed, %d to redo", len(r.Installed), len(r.RedoSet))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "recovery invariant VIOLATED (%d installed, %d to redo):\n", len(r.Installed), len(r.RedoSet))
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  - %s\n", v)
	}
	return strings.TrimRight(b.String(), "\n")
}

// Checker audits the Recovery Invariant for one log's worth of history.
// Build it once per conflict graph and reuse it across configurations.
type Checker struct {
	cg *conflict.Graph
	ig *install.Graph
	sg *stategraph.Graph
}

// NewChecker builds a checker for the history recorded in the log,
// executed from the given initial state. The log supplies both the
// operation set and (via Lemma 1) the conflict graph; the conflict and
// installation graphs come from DefaultGraphs, so repeated analysis of
// the same log prefix (degraded recovery's audit passes, campaign
// re-checks) reuses one construction. Only the state graph, which also
// depends on the initial state, is built per checker.
func NewChecker(log *Log, initial *model.State) (*Checker, error) {
	return NewCheckerObserved(log, initial, nil)
}

// NewCheckerObserved is NewChecker with cache-effectiveness telemetry:
// the graph-cache lookup is counted on the recorder (MGraphHits /
// MGraphMisses). A nil recorder makes it exactly NewChecker.
func NewCheckerObserved(log *Log, initial *model.State, rec *obs.Recorder) (*Checker, error) {
	cg, ig := DefaultGraphs.GraphsObserved(log, rec)
	sg, err := stategraph.FromConflict(cg, initial)
	if err != nil {
		return nil, fmt.Errorf("core: building state graph: %w", err)
	}
	return &Checker{cg: cg, ig: ig, sg: sg}, nil
}

// Conflict returns the checker's conflict graph.
func (c *Checker) Conflict() *conflict.Graph { return c.cg }

// Install returns the checker's installation graph.
func (c *Checker) Install() *install.Graph { return c.ig }

// StateGraph returns the checker's conflict state graph.
func (c *Checker) StateGraph() *stategraph.Graph { return c.sg }

// FinalState returns the state recovery must reconstruct.
func (c *Checker) FinalState() *model.State { return c.sg.FinalState() }

// CheckInstalled audits the invariant for an explicitly given installed
// set: it must induce a prefix of the installation graph that explains
// the state. All violations found are reported, not just the first.
func (c *Checker) CheckInstalled(state *model.State, installed graph.Set[model.OpID]) *Report {
	rep := &Report{Installed: installed.Clone(), RedoSet: complementOf(c.cg, installed)}
	if e, bad := c.ig.PrefixViolation(installed); bad {
		rep.Violations = append(rep.Violations, Violation{
			Kind: NotPrefix,
			Edge: e,
			Detail: fmt.Sprintf("operation %d is installed but its installation-graph predecessor %d is not (%s conflict)",
				e[1], e[0], c.cg.Kind(e[0], e[1])),
		})
	} else {
		det, err := c.ig.DeterminedState(c.sg, installed)
		if err != nil {
			rep.Violations = append(rep.Violations, Violation{Kind: NotPrefix, Detail: err.Error()})
		} else {
			for _, x := range c.cg.Vars() {
				if !install.Exposed(c.cg, installed, x) {
					continue
				}
				if got, want := state.Get(x), det.Get(x); got != want {
					rep.Violations = append(rep.Violations, Violation{
						Kind: ExposedMismatch, Var: x, Got: got, Want: want,
						Detail: fmt.Sprintf("exposed variable %q holds %q but the installed prefix determines %q", x, got, want),
					})
				}
			}
			// Variables no logged operation ever accesses are trivially
			// exposed and must still hold their initial values: a
			// mismatch means the state contains effects of operations
			// missing from the log (the write-ahead-log failure shape).
			initial := c.sg.Initial()
			for _, x := range state.Diff(initial) {
				if len(c.cg.Writers(x)) == 0 && len(c.cg.ReadersOfVersion(x, 0)) == 0 {
					rep.Violations = append(rep.Violations, Violation{
						Kind: ExposedMismatch, Var: x, Got: state.Get(x), Want: initial.Get(x),
						Detail: fmt.Sprintf("variable %q holds %q but no logged operation writes it (initial value %q); its update's log record is missing", x, state.Get(x), initial.Get(x)),
					})
				}
			}
		}
	}
	rep.OK = len(rep.Violations) == 0
	return rep
}

// Check audits the full Recovery Invariant at a hypothetical crash point:
// given the stable state, the (stable) log, the checkpoint, and the
// method's redo test and analysis function, it simulates the recovery
// procedure to learn redo_set, then verifies that operations(log) −
// redo_set induces an explaining prefix. With verifyEnd set it also
// replays recovery for real on a clone and confirms the final state.
func (c *Checker) Check(state *model.State, log *Log, checkpoint graph.Set[model.OpID], redo RedoTest, analyze AnalyzeFunc, verifyEnd bool) *Report {
	if err := log.ValidateAgainst(c.cg); err != nil {
		return &Report{Violations: []Violation{{Kind: LogInconsistent, Detail: err.Error()}}}
	}
	redoSet, err := PredictRedoSet(state, log, checkpoint, redo, analyze)
	if err != nil {
		return &Report{Violations: []Violation{{Kind: RecoveryDiverged, Detail: err.Error()}}}
	}
	installed := complementOf(c.cg, redoSet)
	rep := c.CheckInstalled(state, installed)
	rep.RedoSet = redoSet
	if verifyEnd {
		res, err := Recover(state.Clone(), log, checkpoint, redo, analyze)
		switch {
		case err != nil:
			rep.Violations = append(rep.Violations, Violation{Kind: RecoveryDiverged, Detail: err.Error()})
		case !res.State.Equal(c.FinalState()):
			rep.Violations = append(rep.Violations, Violation{
				Kind: RecoveryDiverged,
				Detail: fmt.Sprintf("recovery ended in %v, want %v (diff: %v)",
					res.State, c.FinalState(), res.State.Diff(c.FinalState())),
			})
		}
		rep.OK = len(rep.Violations) == 0
	}
	return rep
}

// complementOf returns the conflict graph's operations minus the given
// set.
func complementOf(cg *conflict.Graph, s graph.Set[model.OpID]) graph.Set[model.OpID] {
	out := graph.NewSet[model.OpID]()
	for _, id := range cg.OpIDs() {
		if !s.Has(id) {
			out.Add(id)
		}
	}
	return out
}
