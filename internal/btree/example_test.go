package btree_test

import (
	"fmt"

	"redotheory/internal/btree"
	"redotheory/internal/method"
	"redotheory/internal/model"
)

// Example runs a B-tree on generalized-LSN recovery, crashes, recovers,
// and reads the tree back from the recovered state.
func Example() {
	db := method.NewGenLSN(model.NewState())
	tree := btree.New(db, btree.GeneralizedSplit, 4, 1)
	for _, k := range []int64{42, 7, 19, 3, 88, 54, 21} {
		if err := tree.Insert(k); err != nil {
			panic(err)
		}
	}
	db.FlushOne() // install one page; the rest rides on the log
	db.FlushLog()
	db.Crash()

	res, err := method.Recover(db)
	if err != nil {
		panic(err)
	}
	recovered := btree.New(stateReader{res.State}, btree.GeneralizedSplit, 4, 1)
	keys, err := recovered.Keys()
	if err != nil {
		panic(err)
	}
	fmt.Println("splits:", tree.Splits)
	fmt.Println("keys after crash+recovery:", keys)
	// Output:
	// splits: 2
	// keys after crash+recovery: [3 7 19 21 42 54 88]
}

// stateReader adapts a recovered state to the tree's Executor interface.
type stateReader struct{ s *model.State }

func (r stateReader) Read(x model.Var) model.Value { return r.s.Get(x) }
func (r stateReader) Exec(op *model.Op) error      { _, err := r.s.Apply(op); return err }
