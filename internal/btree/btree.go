package btree

import (
	"fmt"

	"redotheory/internal/model"
)

// SplitStrategy selects how node splits are logged.
type SplitStrategy int

const (
	// PhysiologicalSplit logs the new page as a physically-logged blind
	// image write plus a truncate of the old page (Section 6.3: each
	// operation reads and writes exactly one page, so the moved half must
	// travel through the log).
	PhysiologicalSplit SplitStrategy = iota
	// GeneralizedSplit logs the new page as a read-old-write-new
	// descriptor (Section 6.4, Figure 8); the cache manager's careful
	// write ordering replaces the physical image.
	GeneralizedSplit
)

// String names the strategy.
func (s SplitStrategy) String() string {
	if s == PhysiologicalSplit {
		return "physiological-split"
	}
	return "generalized-split"
}

// Executor runs the tree's logged operations; any recovery method's DB
// satisfies it.
type Executor interface {
	Read(model.Var) model.Value
	Exec(*model.Op) error
}

// Tree is a B+-tree over pages managed by a recovery method.
type Tree struct {
	ex       Executor
	strategy SplitStrategy
	// order is the maximum number of keys a node holds; a node at order
	// splits before it is descended into.
	order    int
	root     model.Var
	nextPage int
	nextOp   model.OpID
	// Splits counts node splits (including root splits).
	Splits int
}

// New returns a tree executing through ex. order is the max keys per node
// (≥ 2); firstOp seeds the operation id allocator.
func New(ex Executor, strategy SplitStrategy, order int, firstOp model.OpID) *Tree {
	if order < 2 {
		panic("btree: order must be at least 2")
	}
	return &Tree{ex: ex, strategy: strategy, order: order, root: "bt-root", nextOp: firstOp}
}

// Root returns the root page id (fixed for the tree's lifetime: root
// splits rewrite the root page in place).
func (t *Tree) Root() model.Var { return t.root }

// NextOpID returns the next operation id the tree will allocate, so a
// caller can interleave its own operations without collisions.
func (t *Tree) NextOpID() model.OpID { return t.nextOp }

func (t *Tree) allocOp() model.OpID {
	id := t.nextOp
	t.nextOp++
	return id
}

func (t *Tree) allocPage() model.Var {
	t.nextPage++
	return model.Var(fmt.Sprintf("bt-n%04d", t.nextPage))
}

func (t *Tree) readPage(id model.Var) (*nodePage, error) {
	return decodePage(t.ex.Read(id))
}

// Insert adds a key, splitting full nodes on the way down.
func (t *Tree) Insert(key int64) error {
	for {
		root, err := t.readPage(t.root)
		if err != nil {
			return err
		}
		if root == nil {
			return t.ex.Exec(mkRootOp(t.allocOp(), t.root, key))
		}
		if len(root.Keys) >= t.order {
			if err := t.splitRoot(root); err != nil {
				return err
			}
			continue
		}
		restart, err := t.descendInsert(key)
		if err != nil {
			return err
		}
		if !restart {
			return nil
		}
	}
}

// descendInsert walks from the root to a leaf, splitting any full child
// it is about to enter (which requires a restart because separators
// change). It returns restart=true after performing a split.
func (t *Tree) descendInsert(key int64) (bool, error) {
	curID := t.root
	cur, err := t.readPage(curID)
	if err != nil {
		return false, err
	}
	for !cur.Leaf {
		idx := cur.childIndex(key)
		childID := cur.Kids[idx]
		child, err := t.readPage(childID)
		if err != nil {
			return false, err
		}
		if child == nil {
			return false, fmt.Errorf("btree: dangling child pointer %q in %q", childID, curID)
		}
		if len(child.Keys) >= t.order {
			if err := t.splitChild(curID, childID, child); err != nil {
				return false, err
			}
			return true, nil
		}
		curID, cur = childID, child
	}
	return false, t.ex.Exec(insertLeafOp(t.allocOp(), curID, key))
}

// splitChild splits a full non-root node under its parent.
func (t *Tree) splitChild(parentID, childID model.Var, child *nodePage) error {
	newID := t.allocPage()
	sep, _, right := child.splitPoint()
	switch t.strategy {
	case PhysiologicalSplit:
		// The new page's contents travel through the log as a physical
		// image.
		if err := t.ex.Exec(initImageOp(t.allocOp(), newID, encodePage(right))); err != nil {
			return err
		}
	case GeneralizedSplit:
		// The log carries only the descriptor; recovery recomputes the
		// image from the old page, which careful write ordering keeps
		// intact until this operation is installed.
		if err := t.ex.Exec(splitRightOp(t.allocOp(), childID, newID)); err != nil {
			return err
		}
	}
	if err := t.ex.Exec(truncateOp(t.allocOp(), childID)); err != nil {
		return err
	}
	if err := t.ex.Exec(parentInsertOp(t.allocOp(), parentID, sep, newID)); err != nil {
		return err
	}
	t.Splits++
	return nil
}

// splitRoot splits a full root in place: the halves move to two fresh
// pages and the root becomes an internal node over them.
func (t *Tree) splitRoot(root *nodePage) error {
	leftID, rightID := t.allocPage(), t.allocPage()
	_, left, right := root.splitPoint()
	switch t.strategy {
	case PhysiologicalSplit:
		if err := t.ex.Exec(initImageOp(t.allocOp(), leftID, encodePage(left))); err != nil {
			return err
		}
		if err := t.ex.Exec(initImageOp(t.allocOp(), rightID, encodePage(right))); err != nil {
			return err
		}
	case GeneralizedSplit:
		if err := t.ex.Exec(splitLeftToOp(t.allocOp(), t.root, leftID)); err != nil {
			return err
		}
		if err := t.ex.Exec(splitRightOp(t.allocOp(), t.root, rightID)); err != nil {
			return err
		}
	}
	if err := t.ex.Exec(rootToInternalOp(t.allocOp(), t.root, leftID, rightID)); err != nil {
		return err
	}
	t.Splits++
	return nil
}

// Delete removes a key from its leaf if present (no rebalancing).
func (t *Tree) Delete(key int64) error {
	id, page, err := t.findLeaf(key)
	if err != nil || page == nil {
		return err
	}
	return t.ex.Exec(deleteLeafOp(t.allocOp(), id, key))
}

// Search reports whether the key is present.
func (t *Tree) Search(key int64) (bool, error) {
	_, page, err := t.findLeaf(key)
	if err != nil || page == nil {
		return false, err
	}
	for _, k := range page.Keys {
		if k == key {
			return true, nil
		}
	}
	return false, nil
}

func (t *Tree) findLeaf(key int64) (model.Var, *nodePage, error) {
	curID := t.root
	cur, err := t.readPage(curID)
	if err != nil || cur == nil {
		return "", nil, err
	}
	for !cur.Leaf {
		idx := cur.childIndex(key)
		curID = cur.Kids[idx]
		if cur, err = t.readPage(curID); err != nil {
			return "", nil, err
		}
		if cur == nil {
			return "", nil, fmt.Errorf("btree: dangling pointer %q", curID)
		}
	}
	return curID, cur, nil
}

// Keys returns every key in ascending order.
func (t *Tree) Keys() ([]int64, error) {
	var out []int64
	var walk func(id model.Var) error
	walk = func(id model.Var) error {
		p, err := t.readPage(id)
		if err != nil {
			return err
		}
		if p == nil {
			return fmt.Errorf("btree: dangling pointer %q", id)
		}
		if p.Leaf {
			out = append(out, p.Keys...)
			return nil
		}
		for _, kid := range p.Kids {
			if err := walk(kid); err != nil {
				return err
			}
		}
		return nil
	}
	root, err := t.readPage(t.root)
	if err != nil || root == nil {
		return nil, err
	}
	if err := walk(t.root); err != nil {
		return nil, err
	}
	return out, nil
}

// Validate checks the structural invariants: per-node key order and
// capacity, separator bounds, and uniform leaf depth. It reads through
// the executor, so it can run against a recovered state.
func (t *Tree) Validate() error {
	root, err := t.readPage(t.root)
	if err != nil {
		return err
	}
	if root == nil {
		return nil // empty tree
	}
	leafDepth := -1
	var walk func(id model.Var, lo, hi *int64, depth int) error
	walk = func(id model.Var, lo, hi *int64, depth int) error {
		p, err := t.readPage(id)
		if err != nil {
			return err
		}
		if p == nil {
			return fmt.Errorf("btree: dangling pointer %q", id)
		}
		if len(p.Keys) > t.order {
			return fmt.Errorf("btree: node %q overflows: %d keys > order %d", id, len(p.Keys), t.order)
		}
		for i := 0; i+1 < len(p.Keys); i++ {
			if p.Keys[i] >= p.Keys[i+1] {
				return fmt.Errorf("btree: node %q keys out of order at %d", id, i)
			}
		}
		for _, k := range p.Keys {
			if lo != nil && k < *lo {
				return fmt.Errorf("btree: node %q key %d below bound %d", id, k, *lo)
			}
			if hi != nil && k >= *hi {
				return fmt.Errorf("btree: node %q key %d not below bound %d", id, k, *hi)
			}
		}
		if p.Leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("btree: leaves at depths %d and %d", leafDepth, depth)
			}
			return nil
		}
		if len(p.Kids) != len(p.Keys)+1 {
			return fmt.Errorf("btree: node %q has %d keys but %d children", id, len(p.Keys), len(p.Kids))
		}
		for i, kid := range p.Kids {
			var klo, khi *int64
			if i > 0 {
				klo = &p.Keys[i-1]
			} else {
				klo = lo
			}
			if i < len(p.Keys) {
				khi = &p.Keys[i]
			} else {
				khi = hi
			}
			if err := walk(kid, klo, khi, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root, nil, nil, 0)
}
