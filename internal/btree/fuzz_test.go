package btree

import (
	"testing"

	"redotheory/internal/model"
)

// FuzzPageDecode checks the page codec never panics on arbitrary bytes
// and round-trips everything it accepts.
func FuzzPageDecode(f *testing.F) {
	f.Add([]byte(`{"leaf":true,"keys":[1,2,3]}`))
	f.Add([]byte(`{"leaf":false,"keys":[10],"kids":["a","b"]}`))
	f.Add([]byte(``))
	f.Add([]byte(`garbage`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := decodePage(model.Value(data))
		if err != nil || p == nil {
			return
		}
		q, err := decodePage(encodePage(p))
		if err != nil || q == nil {
			t.Fatalf("accepted page failed to round-trip: %v", err)
		}
		if q.Leaf != p.Leaf || len(q.Keys) != len(p.Keys) || len(q.Kids) != len(p.Kids) {
			t.Fatal("round trip changed the page")
		}
	})
}

// FuzzInsertSequence drives tree inserts from a byte string and checks
// the invariants hold and every inserted key is findable.
func FuzzInsertSequence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add([]byte{9, 9, 9, 0, 0, 1})
	f.Add([]byte{255, 254, 253, 252, 251, 250, 249, 248})
	f.Fuzz(func(t *testing.T, keys []byte) {
		if len(keys) > 64 {
			keys = keys[:64]
		}
		tr := New(&stateExec{s: model.NewState()}, GeneralizedSplit, 4, 1)
		for _, k := range keys {
			if err := tr.Insert(int64(k)); err != nil {
				t.Fatalf("insert %d: %v", k, err)
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("invariants broken: %v", err)
		}
		for _, k := range keys {
			ok, err := tr.Search(int64(k))
			if err != nil || !ok {
				t.Fatalf("key %d missing after insert (err=%v)", k, err)
			}
		}
	})
}
