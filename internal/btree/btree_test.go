package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"redotheory/internal/method"
	"redotheory/internal/model"
)

// stateExec runs tree operations directly against a model state: the
// no-crash reference executor.
type stateExec struct{ s *model.State }

func (e *stateExec) Read(x model.Var) model.Value { return e.s.Get(x) }
func (e *stateExec) Exec(op *model.Op) error      { _, err := e.s.Apply(op); return err }

func sortedCopy(ks []int64) []int64 {
	out := append([]int64{}, ks...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sortedUnique returns the distinct keys in ascending order: what the
// tree (set semantics) actually holds after inserting ks.
func sortedUnique(ks []int64) []int64 {
	s := sortedCopy(ks)
	out := s[:0]
	for i, k := range s {
		if i == 0 || k != s[i-1] {
			out = append(out, k)
		}
	}
	return out
}

func insertAll(t testing.TB, tr *Tree, keys []int64) {
	t.Helper()
	for _, k := range keys {
		if err := tr.Insert(k); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
}

func TestInsertSearchInMemory(t *testing.T) {
	tr := New(&stateExec{s: model.NewState()}, GeneralizedSplit, 4, 1)
	keys := []int64{5, 1, 9, 3, 7, 2, 8, 4, 6, 0, 12, 11, 10}
	insertAll(t, tr, keys)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Keys()
	if err != nil {
		t.Fatal(err)
	}
	want := sortedCopy(keys)
	if len(got) != len(want) {
		t.Fatalf("keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys = %v, want %v", got, want)
		}
	}
	for _, k := range keys {
		if ok, _ := tr.Search(k); !ok {
			t.Errorf("Search(%d) = false", k)
		}
	}
	if ok, _ := tr.Search(99); ok {
		t.Error("Search(99) found a phantom")
	}
	if tr.Splits == 0 {
		t.Error("no splits happened; raise the key count")
	}
}

func TestDuplicateInsertIgnored(t *testing.T) {
	tr := New(&stateExec{s: model.NewState()}, GeneralizedSplit, 4, 1)
	insertAll(t, tr, []int64{1, 2, 1, 2, 1})
	got, _ := tr.Keys()
	if len(got) != 2 {
		t.Errorf("keys = %v, want [1 2]", got)
	}
}

func TestDelete(t *testing.T) {
	tr := New(&stateExec{s: model.NewState()}, GeneralizedSplit, 4, 1)
	insertAll(t, tr, []int64{1, 2, 3, 4, 5, 6, 7})
	if err := tr.Delete(4); err != nil {
		t.Fatal(err)
	}
	if ok, _ := tr.Search(4); ok {
		t.Error("deleted key still found")
	}
	if err := tr.Delete(99); err != nil {
		t.Error("deleting a missing key must be a no-op:", err)
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New(&stateExec{s: model.NewState()}, GeneralizedSplit, 4, 1)
	if ok, err := tr.Search(1); ok || err != nil {
		t.Error("empty tree search")
	}
	if ks, err := tr.Keys(); ks != nil || err != nil {
		t.Error("empty tree keys")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
	if err := tr.Delete(1); err != nil {
		t.Error(err)
	}
}

func TestBothStrategiesSameTreeContents(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		keys := rng.Perm(60)
		run := func(st SplitStrategy) []int64 {
			tr := New(&stateExec{s: model.NewState()}, st, 4, 1)
			for _, k := range keys {
				if err := tr.Insert(int64(k)); err != nil {
					return nil
				}
			}
			if err := tr.Validate(); err != nil {
				return nil
			}
			ks, err := tr.Keys()
			if err != nil {
				return nil
			}
			return ks
		}
		a, b := run(PhysiologicalSplit), run(GeneralizedSplit)
		if a == nil || b == nil || len(a) != len(b) || len(a) != 60 {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// crashRecoverTree runs inserts through a method DB with background
// flushes, forces the log, crashes, recovers, and checks the recovered
// tree matches the volatile tree at crash time.
func crashRecoverTree(t *testing.T, db method.DB, strategy SplitStrategy, keys []int64, rng *rand.Rand) {
	t.Helper()
	tr := New(db, strategy, 4, 1)
	for _, k := range keys {
		if err := tr.Insert(k); err != nil {
			t.Fatalf("%s/%s: insert %d: %v", db.Name(), strategy, k, err)
		}
		if rng.Float64() < 0.4 {
			db.FlushOne()
		}
		if rng.Float64() < 0.15 {
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	db.FlushLog() // crash at a quiescent log boundary: the full history survives
	db.Crash()
	res, err := method.Recover(db)
	if err != nil {
		t.Fatalf("%s/%s: recover: %v", db.Name(), strategy, err)
	}
	rec := New(&stateExec{s: res.State}, strategy, 4, 1)
	if err := rec.Validate(); err != nil {
		t.Fatalf("%s/%s: recovered tree invalid: %v", db.Name(), strategy, err)
	}
	got, err := rec.Keys()
	if err != nil {
		t.Fatal(err)
	}
	want := sortedUnique(keys)
	if len(got) != len(want) {
		t.Fatalf("%s/%s: recovered %d keys, want %d", db.Name(), strategy, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s/%s: recovered keys diverge at %d", db.Name(), strategy, i)
		}
	}
}

func TestCrashRecoverPhysiologicalSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	keys := make([]int64, 80)
	for i := range keys {
		keys[i] = int64(rng.Intn(1000))
	}
	crashRecoverTree(t, method.NewPhysiological(model.NewState()), PhysiologicalSplit, keys, rng)
}

func TestCrashRecoverGeneralizedSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	keys := make([]int64, 80)
	for i := range keys {
		keys[i] = int64(rng.Intn(1000))
	}
	crashRecoverTree(t, method.NewGenLSN(model.NewState()), GeneralizedSplit, keys, rng)
}

func TestCrashRecoverOnLogicalAndPhysical(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	keys := make([]int64, 50)
	for i := range keys {
		keys[i] = int64(rng.Intn(500))
	}
	crashRecoverTree(t, method.NewLogical(model.NewState()), GeneralizedSplit, keys, rng)
	crashRecoverTree(t, method.NewPhysical(model.NewState()), PhysiologicalSplit, keys, rng)
}

func TestMidSplitCrashStillRecoversLoggedPrefix(t *testing.T) {
	// Crash with the log cut mid-split: recovery must reproduce exactly
	// the logged prefix (redo recovery restores the log's state; making
	// multi-operation actions atomic is a transaction concern outside the
	// paper's scope). The recovered state must equal the oracle replay of
	// the stable log.
	db := method.NewGenLSN(model.NewState())
	tr := New(db, GeneralizedSplit, 2, 1)
	for k := int64(1); k <= 6; k++ {
		if err := tr.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	full := db.Log()
	if full.Len() < 4 {
		t.Skip("history too short to cut mid-split")
	}
	// Force only part of the log: stable cut lands inside a split.
	db.FlushLogTo(full.Records()[full.Len()/2].LSN)
	db.Crash()
	res, err := method.Recover(db)
	if err != nil {
		t.Fatal(err)
	}
	oracle := model.NewState()
	for _, op := range db.StableLog().Ops() {
		oracle.MustApply(op)
	}
	if !res.State.Equal(oracle) {
		t.Errorf("recovered %v, want oracle %v", res.State, oracle)
	}
}

func TestGeneralizedSplitLogsFewerBytes(t *testing.T) {
	// The Section 6.4 claim: generalized split logging avoids physically
	// logging the moved half, so its log volume is substantially smaller
	// on a split-heavy insert stream.
	keys := make([]int64, 2000)
	rng := rand.New(rand.NewSource(7))
	for i := range keys {
		keys[i] = int64(rng.Intn(10000000))
	}
	physio := method.NewPhysiological(model.NewState())
	trP := New(physio, PhysiologicalSplit, 32, 1)
	insertAll(t, trP, keys)
	gen := method.NewGenLSN(model.NewState())
	trG := New(gen, GeneralizedSplit, 32, 1)
	insertAll(t, trG, keys)
	pb, gb := physio.Stats().LogBytes, gen.Stats().LogBytes
	if gb >= pb {
		t.Errorf("generalized logged %d total bytes, physiological %d; expected a win", gb, pb)
	}
	// The claim is specifically about split logging: the records that
	// initialize the new page. Physiological must ship the page image;
	// generalized ships a descriptor. Expect at least a 2x gap on those.
	pSplit := SplitLogBytes(physio.Log())
	gSplit := SplitLogBytes(gen.Log())
	if trP.Splits != trG.Splits {
		t.Fatalf("split counts diverge: %d vs %d", trP.Splits, trG.Splits)
	}
	if gSplit*2 > pSplit {
		t.Errorf("split bytes: generalized %d vs physiological %d; expected ≥2x gap", gSplit, pSplit)
	}
}

func TestPageEncodingRoundTrip(t *testing.T) {
	p := &nodePage{Leaf: false, Keys: []int64{3, 7}, Kids: []model.Var{"a", "b", "c"}}
	q, err := decodePage(encodePage(p))
	if err != nil {
		t.Fatal(err)
	}
	if q.Leaf != p.Leaf || len(q.Keys) != 2 || len(q.Kids) != 3 || q.Kids[1] != "b" {
		t.Errorf("round trip = %+v", q)
	}
	if p, err := decodePage(""); p != nil || err != nil {
		t.Error("zero value must decode to nil")
	}
	if _, err := decodePage("garbage"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSplitPoint(t *testing.T) {
	leaf := &nodePage{Leaf: true, Keys: []int64{1, 2, 3, 4}}
	sep, l, r := leaf.splitPoint()
	if sep != 3 || len(l.Keys) != 2 || len(r.Keys) != 2 || r.Keys[0] != 3 {
		t.Errorf("leaf split = %d %v %v", sep, l.Keys, r.Keys)
	}
	in := &nodePage{Keys: []int64{10, 20, 30, 40}, Kids: []model.Var{"a", "b", "c", "d", "e"}}
	sep, l, r = in.splitPoint()
	if sep != 30 {
		t.Errorf("internal sep = %d", sep)
	}
	if len(l.Keys) != 2 || len(l.Kids) != 3 || len(r.Keys) != 1 || len(r.Kids) != 2 {
		t.Errorf("internal split = %v/%v %v/%v", l.Keys, l.Kids, r.Keys, r.Kids)
	}
}

func TestInsertChild(t *testing.T) {
	p := &nodePage{Keys: []int64{10, 30}, Kids: []model.Var{"a", "b", "c"}}
	p.insertChild(20, "x")
	if len(p.Keys) != 3 || p.Keys[1] != 20 {
		t.Errorf("keys = %v", p.Keys)
	}
	if len(p.Kids) != 4 || p.Kids[2] != "x" {
		t.Errorf("kids = %v", p.Kids)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	s := model.NewState()
	tr := New(&stateExec{s: s}, GeneralizedSplit, 4, 1)
	insertAll(t, tr, []int64{1, 2, 3, 4, 5, 6, 7, 8})
	// Corrupt a page: swap two keys in the root.
	root := mustDecode(s.Get(tr.Root()))
	if root.Leaf {
		t.Fatal("tree too small")
	}
	kid := mustDecode(s.Get(root.Kids[0]))
	if len(kid.Keys) < 1 {
		t.Fatal("empty kid")
	}
	kid.Keys[0] = 99999 // violates the separator bound
	s.Set(root.Kids[0], encodePage(kid))
	if err := tr.Validate(); err == nil {
		t.Error("corruption not detected")
	}
}
