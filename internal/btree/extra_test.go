package btree

import (
	"math/rand"
	"testing"

	"redotheory/internal/method"
	"redotheory/internal/model"
)

func TestSequentialAscendingInserts(t *testing.T) {
	// Ascending inserts are the worst case for rightmost splits.
	tr := New(&stateExec{s: model.NewState()}, GeneralizedSplit, 4, 1)
	for k := int64(0); k < 200; k++ {
		if err := tr.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	ks, err := tr.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 200 || ks[0] != 0 || ks[199] != 199 {
		t.Errorf("keys = %d [%d..%d]", len(ks), ks[0], ks[len(ks)-1])
	}
}

func TestSequentialDescendingInserts(t *testing.T) {
	tr := New(&stateExec{s: model.NewState()}, PhysiologicalSplit, 4, 1)
	for k := int64(200); k > 0; k-- {
		if err := tr.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	ks, _ := tr.Keys()
	if len(ks) != 200 {
		t.Errorf("keys = %d", len(ks))
	}
}

func TestInsertDeleteMix(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tr := New(&stateExec{s: model.NewState()}, GeneralizedSplit, 6, 1)
	want := map[int64]bool{}
	for i := 0; i < 500; i++ {
		k := rng.Int63n(200)
		if rng.Float64() < 0.7 {
			if err := tr.Insert(k); err != nil {
				t.Fatal(err)
			}
			want[k] = true
		} else {
			if err := tr.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(want, k)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	ks, err := tr.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != len(want) {
		t.Fatalf("tree has %d keys, want %d", len(ks), len(want))
	}
	for _, k := range ks {
		if !want[k] {
			t.Fatalf("phantom key %d", k)
		}
	}
}

func TestNegativeKeys(t *testing.T) {
	tr := New(&stateExec{s: model.NewState()}, GeneralizedSplit, 4, 1)
	for _, k := range []int64{-5, 3, -100, 0, 42, -1} {
		if err := tr.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	ks, _ := tr.Keys()
	if ks[0] != -100 || ks[len(ks)-1] != 42 {
		t.Errorf("keys = %v", ks)
	}
}

func TestNewPanicsOnTinyOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("order 1 accepted")
		}
	}()
	New(&stateExec{s: model.NewState()}, GeneralizedSplit, 1, 1)
}

func TestNextOpIDAdvances(t *testing.T) {
	tr := New(&stateExec{s: model.NewState()}, GeneralizedSplit, 4, 7)
	if tr.NextOpID() != 7 {
		t.Errorf("NextOpID = %d", tr.NextOpID())
	}
	if err := tr.Insert(1); err != nil {
		t.Fatal(err)
	}
	if tr.NextOpID() != 8 {
		t.Errorf("NextOpID after insert = %d", tr.NextOpID())
	}
	if tr.Root() != "bt-root" {
		t.Errorf("Root = %s", tr.Root())
	}
}

func TestLogBytesByKind(t *testing.T) {
	db := method.NewGenLSN(model.NewState())
	tr := New(db, GeneralizedSplit, 2, 1)
	for k := int64(1); k <= 10; k++ {
		if err := tr.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	kinds := LogBytesByKind(db.Log())
	if kinds["ins"] == 0 || kinds["split"] == 0 || kinds["trunc"] == 0 {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestStrategyString(t *testing.T) {
	if PhysiologicalSplit.String() != "physiological-split" ||
		GeneralizedSplit.String() != "generalized-split" {
		t.Error("strategy names wrong")
	}
}

func TestSearchOnDanglingPointer(t *testing.T) {
	// Corrupt an internal pointer and confirm traversal errors rather
	// than panicking.
	s := model.NewState()
	tr := New(&stateExec{s: s}, GeneralizedSplit, 2, 1)
	for k := int64(1); k <= 6; k++ {
		if err := tr.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	root := mustDecode(s.Get(tr.Root()))
	if root.Leaf {
		t.Fatal("tree too small")
	}
	root.Kids[0] = "bt-nowhere"
	s.Set(tr.Root(), encodePage(root))
	if _, err := tr.Search(1); err == nil {
		t.Error("dangling pointer not reported by Search")
	}
	if _, err := tr.Keys(); err == nil {
		t.Error("dangling pointer not reported by Keys")
	}
	if err := tr.Validate(); err == nil {
		t.Error("dangling pointer not reported by Validate")
	}
}

func TestGroupLSNRunsBTree(t *testing.T) {
	// The grouplsn method executes both strategies (its ops allow any
	// shape), including generalized splits.
	rng := rand.New(rand.NewSource(9))
	keys := make([]int64, 60)
	for i := range keys {
		keys[i] = rng.Int63n(500)
	}
	crashRecoverTree(t, method.NewGroupLSN(model.NewState()), GeneralizedSplit, keys, rng)
}
