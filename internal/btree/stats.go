package btree

import (
	"strings"

	"redotheory/internal/core"
)

// SplitLogBytes sums the simulated wire size of the log records that
// carry a split's new-page contents — "init@…" records under
// physiological logging (full page image) and "split(…" records under
// generalized logging (descriptor only). This isolates the Section 6.4
// log-volume comparison from the insert traffic both strategies share.
func SplitLogBytes(l *core.Log) int {
	total := 0
	for _, r := range l.Records() {
		name := r.Op.Name()
		if strings.HasPrefix(name, "init@") || strings.HasPrefix(name, "split(") {
			total += r.SizeBytes()
		}
	}
	return total
}

// LogBytesByKind buckets record sizes by operation kind (the name up to
// the first '(' or '@'), for the experiment reports.
func LogBytesByKind(l *core.Log) map[string]int {
	out := make(map[string]int)
	for _, r := range l.Records() {
		name := r.Op.Name()
		if i := strings.IndexAny(name, "(@"); i >= 0 {
			name = name[:i]
		}
		out[name] += r.SizeBytes()
	}
	return out
}
