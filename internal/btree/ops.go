package btree

import (
	"fmt"

	"redotheory/internal/model"
)

// This file defines the logged operations the tree emits. Every apply
// function is a pure function of the operation's read-set values (plus
// values captured at creation time, which replay re-supplies verbatim),
// as the model requires for redo to work.

// insertLeafOp inserts a key into a leaf: read page, write page.
func insertLeafOp(id model.OpID, page model.Var, key int64) *model.Op {
	return model.NewOp(id, fmt.Sprintf("ins(%d)@%s", key, page),
		[]model.Var{page}, []model.Var{page},
		func(r model.ReadSet) model.WriteSet {
			p := mustDecode(r[page])
			p.insertKey(key)
			return model.WriteSet{page: encodePage(p)}
		})
}

// deleteLeafOp removes a key from a leaf (no rebalancing: the tree only
// needs deletes for API completeness, not for the split experiments).
func deleteLeafOp(id model.OpID, page model.Var, key int64) *model.Op {
	return model.NewOp(id, fmt.Sprintf("del(%d)@%s", key, page),
		[]model.Var{page}, []model.Var{page},
		func(r model.ReadSet) model.WriteSet {
			p := mustDecode(r[page])
			p.removeKey(key)
			return model.WriteSet{page: encodePage(p)}
		})
}

// mkRootOp creates the tree's first leaf: a blind write of the root page.
func mkRootOp(id model.OpID, root model.Var, key int64) *model.Op {
	img := encodePage(&nodePage{Leaf: true, Keys: []int64{key}})
	return model.NewOp(id, fmt.Sprintf("mkroot(%d)@%s", key, root), nil, []model.Var{root},
		func(model.ReadSet) model.WriteSet {
			return model.WriteSet{root: img}
		})
}

// initImageOp physically logs a page image: a blind write carrying the
// full image, as physiological split logging requires for the new page.
func initImageOp(id model.OpID, page model.Var, img model.Value) *model.Op {
	return model.NewOp(id, fmt.Sprintf("init@%s", page), nil, []model.Var{page},
		func(model.ReadSet) model.WriteSet {
			return model.WriteSet{page: img}
		})
}

// splitRightOp is the generalized split operation of Section 6.4 /
// Figure 8: it reads the old (full) page and writes the new page with
// the upper half of its contents — no image in the log, just this
// descriptor.
func splitRightOp(id model.OpID, old, new_ model.Var) *model.Op {
	return model.NewOp(id, fmt.Sprintf("split(%s->%s)", old, new_),
		[]model.Var{old}, []model.Var{new_},
		func(r model.ReadSet) model.WriteSet {
			_, _, right := mustDecode(r[old]).splitPoint()
			return model.WriteSet{new_: encodePage(right)}
		})
}

// truncateOp completes a split by rewriting the old page with the lower
// half of its contents ("a subsequent operation then removes the moved
// half", Section 6.4). Used by both strategies.
func truncateOp(id model.OpID, old model.Var) *model.Op {
	return model.NewOp(id, fmt.Sprintf("trunc(%s)", old),
		[]model.Var{old}, []model.Var{old},
		func(r model.ReadSet) model.WriteSet {
			_, left, _ := mustDecode(r[old]).splitPoint()
			return model.WriteSet{old: encodePage(left)}
		})
}

// parentInsertOp records the new sibling in the parent: read parent,
// write parent, inserting the captured separator and pointer.
func parentInsertOp(id model.OpID, parent model.Var, sep int64, kid model.Var) *model.Op {
	return model.NewOp(id, fmt.Sprintf("sep(%d,%s)@%s", sep, kid, parent),
		[]model.Var{parent}, []model.Var{parent},
		func(r model.ReadSet) model.WriteSet {
			p := mustDecode(r[parent])
			p.insertChild(sep, kid)
			return model.WriteSet{parent: encodePage(p)}
		})
}

// rootToInternalOp rewrites a just-split root as an internal node over
// the two captured children; the separator is recomputed from the old
// root image it reads, keeping the operation pure.
func rootToInternalOp(id model.OpID, root, left, right model.Var) *model.Op {
	return model.NewOp(id, fmt.Sprintf("newroot(%s,%s)@%s", left, right, root),
		[]model.Var{root}, []model.Var{root},
		func(r model.ReadSet) model.WriteSet {
			sep, _, _ := mustDecode(r[root]).splitPoint()
			p := &nodePage{Keys: []int64{sep}, Kids: []model.Var{left, right}}
			return model.WriteSet{root: encodePage(p)}
		})
}

// splitLeftToOp is the generalized root-split helper: it reads the root
// and writes the captured left page with the lower half.
func splitLeftToOp(id model.OpID, root, left model.Var) *model.Op {
	return model.NewOp(id, fmt.Sprintf("split(%s->%s.L)", root, left),
		[]model.Var{root}, []model.Var{left},
		func(r model.ReadSet) model.WriteSet {
			_, l, _ := mustDecode(r[root]).splitPoint()
			return model.WriteSet{left: encodePage(l)}
		})
}
