// Package btree is a page-oriented B+-tree used by the Section 6.4
// experiment: node splits logged physiologically (the moved half is
// physically logged as a blind init of the new page) versus with
// generalized read-one-page-write-another operations (the split ships a
// short descriptor and the cache manager enforces the Figure 8 careful
// write order: new page before old page).
//
// The tree executes its mutations through an Executor — any recovery
// method's DB — so crash and recovery behaviour come entirely from the
// method under test.
package btree

import (
	"encoding/json"
	"fmt"
	"sort"

	"redotheory/internal/model"
)

// nodePage is the on-page representation of a tree node. Internal nodes
// hold len(Keys)+1 children; child i covers keys k with
// Keys[i-1] ≤ k < Keys[i].
type nodePage struct {
	Leaf bool        `json:"leaf"`
	Keys []int64     `json:"keys"`
	Kids []model.Var `json:"kids,omitempty"`
}

// encodePage serializes a node into a page value.
func encodePage(p *nodePage) model.Value {
	b, err := json.Marshal(p)
	if err != nil {
		panic(fmt.Sprintf("btree: encoding page: %v", err)) // marshal of this struct cannot fail
	}
	return model.Value(b)
}

// decodePage parses a page value. The zero value decodes to nil (no
// page).
func decodePage(v model.Value) (*nodePage, error) {
	if v == "" {
		return nil, nil
	}
	var p nodePage
	if err := json.Unmarshal([]byte(v), &p); err != nil {
		return nil, fmt.Errorf("btree: corrupt page: %w", err)
	}
	return &p, nil
}

// mustDecode parses a page value inside an operation's apply function,
// where a decode failure means recovery replayed the operation against a
// state the invariant forbids — a bug worth a loud stop.
func mustDecode(v model.Value) *nodePage {
	p, err := decodePage(v)
	if err != nil {
		panic(err)
	}
	if p == nil {
		panic("btree: operation replayed against a missing page")
	}
	return p
}

// insertKey inserts k into sorted order; duplicate inserts are no-ops.
func (p *nodePage) insertKey(k int64) {
	i := sort.Search(len(p.Keys), func(i int) bool { return p.Keys[i] >= k })
	if i < len(p.Keys) && p.Keys[i] == k {
		return
	}
	p.Keys = append(p.Keys, 0)
	copy(p.Keys[i+1:], p.Keys[i:])
	p.Keys[i] = k
}

// removeKey removes k if present, reporting whether it was.
func (p *nodePage) removeKey(k int64) bool {
	i := sort.Search(len(p.Keys), func(i int) bool { return p.Keys[i] >= k })
	if i >= len(p.Keys) || p.Keys[i] != k {
		return false
	}
	p.Keys = append(p.Keys[:i], p.Keys[i+1:]...)
	return true
}

// childIndex returns the index of the child to descend into for k.
func (p *nodePage) childIndex(k int64) int {
	return sort.Search(len(p.Keys), func(i int) bool { return k < p.Keys[i] })
}

// splitPoint returns the separator key and the images of the left and
// right halves for a full node. For a leaf the separator is the right
// half's first key (it stays in the leaf); for an internal node the
// separator is promoted and appears in neither half.
func (p *nodePage) splitPoint() (sep int64, left, right *nodePage) {
	mid := len(p.Keys) / 2
	if p.Leaf {
		sep = p.Keys[mid]
		left = &nodePage{Leaf: true, Keys: append([]int64{}, p.Keys[:mid]...)}
		right = &nodePage{Leaf: true, Keys: append([]int64{}, p.Keys[mid:]...)}
		return sep, left, right
	}
	sep = p.Keys[mid]
	left = &nodePage{
		Keys: append([]int64{}, p.Keys[:mid]...),
		Kids: append([]model.Var{}, p.Kids[:mid+1]...),
	}
	right = &nodePage{
		Keys: append([]int64{}, p.Keys[mid+1:]...),
		Kids: append([]model.Var{}, p.Kids[mid+1:]...),
	}
	return sep, left, right
}

// insertChild inserts separator s and the pointer to the new right
// sibling into an internal node.
func (p *nodePage) insertChild(s int64, kid model.Var) {
	i := sort.Search(len(p.Keys), func(i int) bool { return p.Keys[i] >= s })
	p.Keys = append(p.Keys, 0)
	copy(p.Keys[i+1:], p.Keys[i:])
	p.Keys[i] = s
	p.Kids = append(p.Kids, "")
	copy(p.Kids[i+2:], p.Kids[i+1:])
	p.Kids[i+1] = kid
}
