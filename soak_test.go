package redotheory_test

// Soak tests: long histories through every method with continuous
// auditing where applicable. Skipped under -short.

import (
	"math/rand"
	"testing"

	"redotheory/internal/btree"
	"redotheory/internal/method"
	"redotheory/internal/model"
	"redotheory/internal/sim"
	"redotheory/internal/workload"
)

func TestSoakAllMethodsLongHistory(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	pages := workload.Pages(24)
	s0 := workload.InitialState(pages)
	rows := []struct {
		name   string
		mk     sim.Factory
		online bool
	}{
		{"logical", func(s *model.State) method.DB { return method.NewLogical(s) }, false},
		{"physical", func(s *model.State) method.DB { return method.NewPhysical(s) }, false},
		{"physiological", func(s *model.State) method.DB { return method.NewPhysiological(s) }, true},
		{"physiological+dpt", func(s *model.State) method.DB { return method.NewPhysiologicalDPT(s) }, true},
		{"genlsn", func(s *model.State) method.DB { return method.NewGenLSN(s) }, true},
		{"genlsn+mv", func(s *model.State) method.DB { return method.NewGenLSNMV(s) }, true},
	}
	const n = 2000
	for _, row := range rows {
		ops, err := workload.ForMethod(row.name, n, pages, 99)
		if err != nil {
			t.Fatal(err)
		}
		for _, crash := range []int{0, n / 3, 2 * n / 3, n} {
			res, err := sim.Run(row.mk, sim.Config{
				Ops: ops, Initial: s0, CrashAfter: crash, Seed: int64(crash) + 7,
				OnlineAudit: row.online,
			})
			if err != nil {
				t.Fatalf("%s crash=%d: %v", row.name, crash, err)
			}
			if !res.Recovered || !res.InvariantOK || !res.OnlineOK {
				t.Errorf("%s crash=%d: recovered=%v invariant=%v online=%v",
					row.name, crash, res.Recovered, res.InvariantOK, res.OnlineOK)
			}
		}
	}
}

func TestSoakBTreeLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(4))
	keys := make([]int64, 5000)
	for i := range keys {
		keys[i] = rng.Int63n(1 << 50)
	}
	for _, cfg := range []struct {
		strategy btree.SplitStrategy
		mk       func() method.DB
	}{
		{btree.PhysiologicalSplit, func() method.DB { return method.NewPhysiological(model.NewState()) }},
		{btree.GeneralizedSplit, func() method.DB { return method.NewGenLSN(model.NewState()) }},
		{btree.GeneralizedSplit, func() method.DB { return method.NewGenLSNMV(model.NewState()) }},
	} {
		db := cfg.mk()
		tr := btree.New(db, cfg.strategy, 16, 1)
		for i, k := range keys {
			if err := tr.Insert(k); err != nil {
				t.Fatalf("%s/%s: %v", db.Name(), cfg.strategy, err)
			}
			if i%7 == 0 {
				db.FlushOne()
			}
			if i%301 == 0 {
				if err := db.Checkpoint(); err != nil {
					t.Fatal(err)
				}
			}
		}
		db.FlushLog()
		db.Crash()
		res, err := method.Recover(db)
		if err != nil {
			t.Fatalf("%s/%s: recover: %v", db.Name(), cfg.strategy, err)
		}
		rec := btree.New(&soakStateExec{s: res.State}, cfg.strategy, 16, 1)
		if err := rec.Validate(); err != nil {
			t.Fatalf("%s/%s: recovered tree invalid: %v", db.Name(), cfg.strategy, err)
		}
		got, err := rec.Keys()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != uniqueCount(keys) {
			t.Errorf("%s/%s: recovered %d keys, want %d", db.Name(), cfg.strategy, len(got), uniqueCount(keys))
		}
	}
}

type soakStateExec struct{ s *model.State }

func (e *soakStateExec) Read(x model.Var) model.Value { return e.s.Get(x) }
func (e *soakStateExec) Exec(op *model.Op) error      { _, err := e.s.Apply(op); return err }

func uniqueCount(ks []int64) int {
	seen := make(map[int64]bool, len(ks))
	for _, k := range ks {
		seen[k] = true
	}
	return len(seen)
}
